package gee

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

func TestEmbedCompressedMatchesReference(t *testing.T) {
	el := gen.RMAT(4, 11, 40_000, gen.Graph500Params, 71)
	y := labels.SampleSemiSupervised(el.N, 12, 0.2, 72)
	g := graph.BuildCSR(4, el)
	graph.SortAdjacency(4, g)
	c, err := graph.Compress(4, g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := EmbedCSR(Reference, g, y, Options{K: 12})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EmbedCompressed(c, y, Options{K: 12, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Z.EqualTol(got.Z, 1e-9) {
		t.Fatalf("compressed kernel differs by %v", ref.Z.MaxAbsDiff(got.Z))
	}
}

func TestEmbedCompressedLaplacian(t *testing.T) {
	el := gen.ErdosRenyi(4, 400, 6000, 73)
	y := labels.SampleSemiSupervised(el.N, 5, 0.4, 74)
	g := graph.BuildCSR(4, el)
	graph.SortAdjacency(4, g)
	c, err := graph.Compress(4, g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := EmbedCSR(Reference, g, y, Options{K: 5, Laplacian: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EmbedCompressed(c, y, Options{K: 5, Workers: 8, Laplacian: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Z.EqualTol(got.Z, 1e-9) {
		t.Fatalf("compressed laplacian differs by %v", ref.Z.MaxAbsDiff(got.Z))
	}
}

func TestEmbedCompressedValidation(t *testing.T) {
	g := graph.BuildCSR(1, gen.Path(3))
	c, err := graph.Compress(1, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmbedCompressed(c, []int32{0}, Options{K: 1}); err == nil {
		t.Fatal("label mismatch accepted")
	}
}
