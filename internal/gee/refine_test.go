package gee

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/labels"
)

// TestSBMRecoverySemiSupervised is E7: with the paper's semi-supervised
// protocol (ground-truth labels on a fraction of nodes), the argmax over
// a vertex's embedding row recovers its community on a well-separated
// SBM.
func TestSBMRecoverySemiSupervised(t *testing.T) {
	el, truth := gen.SBM(8, 2000, 4, 0.05, 0.002, 1)
	// reveal 10% of true labels (the paper's protocol, but with real
	// labels instead of uniform noise so quality is measurable)
	y := make([]int32, el.N)
	for i := range y {
		y[i] = labels.Unknown
	}
	rnd := labels.SampleSemiSupervised(el.N, 4, 0.1, 2)
	revealed := 0
	for i := range y {
		if rnd[i] >= 0 {
			y[i] = truth[i]
			revealed++
		}
	}
	res, err := Embed(LigraParallel, el, y, Options{K: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	pred := make([]int32, el.N)
	for v := 0; v < el.N; v++ {
		pred[v] = int32(res.Z.ArgMaxRow(v))
	}
	acc := cluster.Accuracy(pred, truth)
	if acc < 0.9 {
		t.Fatalf("argmax recovery accuracy %v on separated SBM (revealed %d)", acc, revealed)
	}
}

// TestSBMRecoveryKMeans clusters the embedding with k-means and checks
// ARI against the planted partition.
func TestSBMRecoveryKMeans(t *testing.T) {
	el, truth := gen.SBM(8, 1500, 3, 0.06, 0.002, 3)
	y := make([]int32, el.N)
	rnd := labels.SampleSemiSupervised(el.N, 3, 0.1, 4)
	for i := range y {
		y[i] = labels.Unknown
		if rnd[i] >= 0 {
			y[i] = truth[i]
		}
	}
	res, err := Embed(LigraParallel, el, y, Options{K: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	z := res.Z.Clone()
	z.RowL2Normalize()
	km := cluster.KMeans(8, z, 3, 5, 100)
	if ari := cluster.ARI(km.Assign, truth); ari < 0.8 {
		t.Fatalf("k-means ARI %v on separated SBM", ari)
	}
}

// TestRefineUnsupervisedSBM runs the full unsupervised pipeline from
// random labels and checks it converges to the planted partition.
func TestRefineUnsupervisedSBM(t *testing.T) {
	el, truth := gen.SBM(8, 1200, 3, 0.08, 0.002, 7)
	res, err := Refine(el, RefineOptions{
		Embedding: Options{K: 3, Workers: 8},
		Impl:      LigraParallel,
		MaxRounds: 30,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ari := cluster.ARI(res.Labels, truth); ari < 0.7 {
		t.Fatalf("refined ARI %v (rounds=%d, self-ARI=%v)", ari, res.Rounds, res.ARI)
	}
	if res.Rounds < 1 || res.Rounds > 30 {
		t.Fatalf("rounds=%d", res.Rounds)
	}
}

func TestRefineRequiresK(t *testing.T) {
	el, _ := gen.TwoTriangles()
	if _, err := Refine(el, RefineOptions{Impl: Optimized}); err == nil {
		t.Fatal("missing K accepted")
	}
}

func TestRefineTwoTriangles(t *testing.T) {
	el, truth := gen.TwoTriangles()
	res, err := Refine(el, RefineOptions{
		Embedding: Options{K: 2, Workers: 2},
		Impl:      Optimized,
		MaxRounds: 20,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ari := cluster.ARI(res.Labels, truth); ari < 0.99 {
		t.Fatalf("two disjoint triangles not separated: ARI=%v labels=%v", ari, res.Labels)
	}
}

func TestVerifyReportShape(t *testing.T) {
	el, y, _ := handExample()
	reports, err := Verify(el, y, Options{K: 2, Workers: 4}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(Impls)-1 {
		t.Fatalf("%d reports", len(reports))
	}
	for _, r := range reports {
		if !r.WithinTol || r.MaxAbsDiff != 0 {
			t.Fatalf("%v: tiny example must be exact (diff %v)", r.Impl, r.MaxAbsDiff)
		}
	}
}
