package gee

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
)

// The cross-backend equivalence of ShardedParallel and Replicated on
// undirected, weighted, and Laplacian inputs is covered by the
// Verify-driven tests in gee_test.go (both are members of Impls). The
// tests here cover the remaining surfaces: the directed variant, the
// per-phase timed path, and the race-detector exercise on a power-law
// graph.

func TestDirectedAllBackendsMatchSerialOracle(t *testing.T) {
	el := gen.RMAT(4, 10, 25_000, gen.Graph500Params, 61)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%5 + 1)
	}
	y := labels.SampleSemiSupervised(el.N, 8, 0.25, 62)
	g := graph.BuildCSR(4, el)
	for _, laplacian := range []bool{false, true} {
		oracle, err := EmbedDirected(LigraSerial, g, y, Options{K: 8, Laplacian: laplacian})
		if err != nil {
			t.Fatal(err)
		}
		for _, impl := range []Impl{LigraParallel, Replicated, ShardedParallel} {
			res, err := EmbedDirected(impl, g, y, Options{K: 8, Workers: 8, Laplacian: laplacian})
			if err != nil {
				t.Fatalf("%v laplacian=%v: %v", impl, laplacian, err)
			}
			if !oracle.Z.EqualTol(res.Z, 1e-9) {
				t.Errorf("%v laplacian=%v: directed deviates by %v",
					impl, laplacian, oracle.Z.MaxAbsDiff(res.Z))
			}
		}
	}
}

func TestEmbedCSRTimedCoversNewBackends(t *testing.T) {
	el := gen.ErdosRenyi(4, 1000, 20_000, 63)
	y := labels.SampleSemiSupervised(el.N, 10, 0.2, 64)
	g := graph.BuildCSR(4, el)
	ref, err := EmbedCSR(Reference, g, y, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, impl := range []Impl{Replicated, ShardedParallel} {
		res, tm, err := EmbedCSRTimed(impl, g, y, Options{K: 10, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", impl, err)
		}
		if tm.EdgeMap <= 0 {
			t.Fatalf("%v: timings %+v", impl, tm)
		}
		if !ref.Z.EqualTol(res.Z, 1e-9) {
			t.Fatalf("%v: timed run deviates by %v", impl, ref.Z.MaxAbsDiff(res.Z))
		}
	}
}

// TestShardedParallelPowerLawUnderRaceDetector drives the full gee path
// of the sharded backend on a skewed power-law graph with high worker
// counts; `go test -race` (the CI configuration) turns this into the
// no-data-races assertion for the contention-free ownership claim.
func TestShardedParallelPowerLawUnderRaceDetector(t *testing.T) {
	el := gen.RMAT(8, 12, 120_000, gen.Graph500Params, 65)
	y := labels.SampleSemiSupervised(el.N, 16, 0.1, 66)
	g := graph.BuildCSR(8, el)
	ref, err := EmbedCSR(Reference, g, y, Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 16} {
		res, err := EmbedCSR(ShardedParallel, g, y, Options{K: 16, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !ref.Z.EqualTol(res.Z, 1e-9) {
			t.Fatalf("workers=%d: deviates from reference by %v",
				workers, ref.Z.MaxAbsDiff(res.Z))
		}
	}
}

func TestReplicatedViaImplsMatchesLegacyEntryPoint(t *testing.T) {
	el := gen.ErdosRenyi(4, 500, 8000, 67)
	y := labels.SampleSemiSupervised(el.N, 5, 0.3, 68)
	g := graph.BuildCSR(4, el)
	a, err := EmbedReplicated(g, y, Options{K: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EmbedCSR(Replicated, g, y, Options{K: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Z.MaxAbsDiff(b.Z) != 0 {
		t.Fatal("wrapper and first-class Replicated disagree")
	}
	if a.Impl != Replicated {
		t.Fatalf("wrapper reports Impl %v", a.Impl)
	}
}
