package gee

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/mat"
)

// StreamingEmbedder maintains a GEE embedding under edge insertions.
// Because Algorithm 1 is a sum of independent per-edge contributions,
// a new batch of edges folds into Z with the same two writeAdd updates
// per edge and no recomputation — the natural incremental extension of
// the paper's one-pass formulation (its conclusion positions GEE for
// exactly this streaming regime). Batches run through the shared exec
// kernel with atomic adds.
//
// The label vector and class counts are fixed at construction: the
// per-vertex coefficients 1/count(Y=k) enter every contribution, so
// label changes require a rebuild (Reset).
type StreamingEmbedder struct {
	n, k    int
	workers int
	kern    exec.Kernel[float64]
	z       *mat.Dense
	edges   int64
}

// NewStreamingEmbedder prepares an empty embedding for n vertices with
// the given fixed labels.
func NewStreamingEmbedder(n int, y []int32, opts Options) (*StreamingEmbedder, error) {
	k, err := opts.normalize(n, y)
	if err != nil {
		return nil, err
	}
	if opts.Laplacian {
		return nil, fmt.Errorf("gee: streaming Laplacian unsupported (degrees change with every batch)")
	}
	workers := opts.workers()
	return &StreamingEmbedder{
		n: n, k: k, workers: workers,
		kern: buildKernel(workers, y, k, nil),
		z:    mat.NewDense(n, k),
	}, nil
}

// AddEdges folds a batch of edges into the embedding in parallel with
// atomic updates. Edges must reference vertices in [0, n); the
// validation pre-pass is chunked across workers so large batches are
// not serialized in front of the parallel kernel.
func (s *StreamingEmbedder) AddEdges(batch []graph.Edge) error {
	if i := graph.FirstInvalidEdge(s.workers, s.n, batch); i >= 0 {
		e := batch[i]
		return fmt.Errorf("gee: batch edge %d (%d->%d) out of range [0,%d)", i, e.U, e.V, s.n)
	}
	if _, err := exec.AtomicEdges(s.kern, batch, s.n, s.z.Data, s.workers); err != nil {
		return err
	}
	s.edges += int64(len(batch))
	return nil
}

// RemoveEdges retracts previously inserted edges (contributions are
// linear, so retraction is insertion with negated weight).
func (s *StreamingEmbedder) RemoveEdges(batch []graph.Edge) error {
	neg := make([]graph.Edge, len(batch))
	for i, e := range batch {
		neg[i] = graph.Edge{U: e.U, V: e.V, W: -e.W}
	}
	if err := s.AddEdges(neg); err != nil {
		return err
	}
	s.edges -= 2 * int64(len(batch)) // AddEdges counted the retraction batch
	return nil
}

// Z returns the current embedding (aliases internal storage; callers
// must not mutate while streaming continues).
func (s *StreamingEmbedder) Z() *mat.Dense { return s.z }

// EdgeCount returns the net number of edges folded in.
func (s *StreamingEmbedder) EdgeCount() int64 { return s.edges }

// Snapshot returns an independent copy of the current embedding.
func (s *StreamingEmbedder) Snapshot() *Result {
	return &Result{Z: s.z.Clone(), K: s.k, Impl: LigraParallel}
}

// Reset zeroes the embedding (labels and coefficients are kept).
func (s *StreamingEmbedder) Reset() {
	s.z.Zero()
	s.edges = 0
}
