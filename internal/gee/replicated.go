package gee

import (
	"repro/internal/graph"
	"repro/internal/mat"
	"repro/internal/parallel"
)

// EmbedReplicated is the classic alternative to atomic updates: each
// worker accumulates into a private copy of Z, and the copies are
// reduced at the end. It computes the same embedding as LigraParallel
// with no atomics and no races, at the cost of workers × n × K memory
// and a full reduction pass.
//
// The paper chooses atomics instead ("more efficient memory usage");
// this implementation exists for the ablation benchmark that quantifies
// that choice. It is not part of Impls and deliberately refuses
// unreasonable buffer sizes.
func EmbedReplicated(g *graph.CSR, y []int32, opts Options) (*Result, error) {
	k, err := opts.normalize(g.N, y)
	if err != nil {
		return nil, err
	}
	workers := opts.workers()
	counts := classCounts(workers, y, k)
	coeff := projectionCoeffs(workers, y, counts)
	var deg []float64
	if opts.Laplacian {
		deg = incidentDegreesCSR(workers, g)
	}
	w := parallel.Workers(workers)
	buffers := make([][]float64, w)
	parallel.ForStatic(w, g.N, func(worker, lo, hi int) {
		zd := make([]float64, g.N*k)
		buffers[worker] = zd
		for u := lo; u < hi; u++ {
			for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
				v := g.Targets[i]
				wt := float64(g.Weight(i))
				if opts.Laplacian {
					wt *= laplacianScale(deg, graph.NodeID(u), v)
				}
				if yv := y[v]; yv >= 0 {
					zd[u*k+int(yv)] += coeff[v] * wt
				}
				if yu := y[u]; yu >= 0 {
					zd[int(v)*k+int(yu)] += coeff[u] * wt
				}
			}
		}
	})
	z := mat.NewDense(g.N, k)
	out := z.Data
	// parallel over cells, deterministic per-cell accumulation order
	parallel.ForChunk(workers, g.N*k, 0, func(lo, hi int) {
		for _, buf := range buffers {
			if buf == nil {
				continue
			}
			for i := lo; i < hi; i++ {
				out[i] += buf[i]
			}
		}
	})
	return &Result{Z: z, K: k, Impl: LigraParallel}, nil
}
