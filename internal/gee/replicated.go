package gee

import (
	"repro/internal/graph"
)

// EmbedReplicated is the classic alternative to atomic updates: each
// worker accumulates into a private copy of Z, and the copies are
// reduced at the end. It computes the same embedding as LigraParallel
// with no atomics and no races, at the cost of workers × n × K memory
// and a full reduction pass.
//
// The paper chooses atomics instead ("more efficient memory usage");
// the ablation benchmark quantifies that choice. Replication now rides
// the exec layer as a first-class implementation — this wrapper is the
// original entry point, kept for callers that predate EmbedCSR(
// Replicated, ...).
func EmbedReplicated(g *graph.CSR, y []int32, opts Options) (*Result, error) {
	return EmbedCSR(Replicated, g, y, opts)
}
