// Package wire implements the compact binary frame that carries the
// serving tier's large row payloads — snapshot bootstrap, epoch-delta
// fan-out, and batched embedding reads — when a client negotiates
// Content-Type application/x-gee-frame instead of the JSON debug path.
//
// Layout, little-endian throughout (every section offset is a multiple
// of 4, so a decoder may alias the fixed-width arrays in place —
// DecodeFrame over a mmap'd spill file is the replica's zero-copy
// bootstrap path):
//
//	magic    [8]byte  "GEEWIRE1"
//	kind     uint8    1=snapshot 2=delta 3=embeddings
//	flags    uint8    bit0 = resync, bit1 = sparse rows (both delta only)
//	reserved uint16   must be zero
//	k        uint32   row width (embedding columns)
//	epoch    uint64
//	instance uint64   embedder lifetime the epoch belongs to
//	from     uint64   delta origin epoch (0 otherwise)
//	edges    int64    live edges at epoch
//	n        uint32   total vertices on the server
//	ny       uint32   label-array entries (0, or n on snapshots)
//	nlabels  uint32   label-update pairs
//	nids     uint32   explicit row ids (0 = implicit identity 0..nrows-1)
//	nrows    uint32   payload rows
//	bodyb    uint32   sparse row blob length in bytes (0 on dense frames)
//	y        ny      × int32
//	labels   nlabels × (uint32 v, int32 class)
//	ids      nids    × uint32   (dense frames only)
//	rows     nrows×k × float32  (dense frames only)
//	sparse   bodyb bytes        (sparse frames only; replaces ids+rows)
//
// Rows travel as float32: the binary wire's documented precision. The
// JSON path serves the full float64 bits (shortest round-trip decimal);
// the binary path trades the mantissa tail for fewer bytes. A float32
// survives the float64 round trip exactly, so a follower fed binary
// frames stays bit-identical to binary re-reads of the primary.
//
// # Sparse rows
//
// Delta frames may set flag bit1 and encode their rows sparsely —
// embedding rows in this system are mostly zero (a vertex's row is
// nonzero only in the classes its labeled neighbors carry), and JSON
// spends just one byte per zero, so a fixed-width binary row would
// hand back most of its advantage. The sparse blob holds the rows in
// ascending vertex order, each encoded as:
//
//	id      uvarint  first row: the vertex id; later rows: the
//	                 (strictly positive) increment over the previous id
//	bitmap  ⌈k/8⌉ bytes, bit j (LSB-first) set iff column j is nonzero
//	values  one little-endian float32 per set bit, in column order
//
// The encoding is canonical and decoders enforce it — minimal
// varints, zero padding bits past column k-1, no explicitly stored
// +0.0 (a float32 whose bits are zero must be elided; -0.0 has
// nonzero bits and is stored) — so any accepted frame re-encodes
// byte-identically. Snapshots stay dense: their payload is the bulk
// of the matrix, and the fixed layout is what lets a replica mmap a
// spilled frame and alias the rows in place (see DecodeFrame).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// ContentType is the negotiated media type of a binary frame response.
// JSON stays the default: a server only answers with frames when the
// request's Accept header lists this type explicitly.
const ContentType = "application/x-gee-frame"

// Frame kinds.
const (
	KindSnapshot   = 1
	KindDelta      = 2
	KindEmbeddings = 3
)

// HeaderSize is the fixed frame prefix length in bytes.
const HeaderSize = 72

var magic = [8]byte{'G', 'E', 'E', 'W', 'I', 'R', 'E', '1'}

const (
	flagResync = 1 << 0
	flagSparse = 1 << 1
)

// maxCount bounds every header count and maxBody the total body
// length: a corrupted or hostile 72-byte header must not turn into a
// multi-gigabyte make() in ReadFrame. maxCount is small enough that
// the widest term below, 4·nrows·k ≤ 4·2^30·2^30 = 2^62, cannot
// overflow int64 — the size arithmetic is exact before it is compared
// against maxBody.
const (
	maxCount = 1 << 30
	maxBody  = 512 << 20
)

// hostLittle reports whether this machine stores integers little-endian
// — the precondition for aliasing wire bytes as typed slices.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Label is one label update: vertex V now has class Class (-1 removes
// the label). Field order and widths match the wire exactly.
type Label struct {
	V     uint32
	Class int32
}

// Header is the fixed-size frame prefix.
type Header struct {
	Kind   uint8
	Resync bool
	// Sparse marks a delta frame whose rows travel in the sparse blob
	// encoding (see the package doc) instead of the fixed sections.
	Sparse   bool
	K        uint32
	Epoch    uint64
	Instance uint64
	From     uint64
	Edges    int64
	N        uint32
	NY       uint32
	NLabels  uint32
	NIDs     uint32
	NRows    uint32
	// BodyBytes is the sparse row blob's exact byte length; zero on
	// dense frames. Encoders derive it (see Frame.normalized).
	BodyBytes uint32
}

// AppendTo appends the encoded 72-byte header to buf.
func (h Header) AppendTo(buf []byte) []byte {
	var b [HeaderSize]byte
	copy(b[0:8], magic[:])
	b[8] = h.Kind
	if h.Resync {
		b[9] |= flagResync
	}
	if h.Sparse {
		b[9] |= flagSparse
	}
	binary.LittleEndian.PutUint32(b[12:], h.K)
	binary.LittleEndian.PutUint64(b[16:], h.Epoch)
	binary.LittleEndian.PutUint64(b[24:], h.Instance)
	binary.LittleEndian.PutUint64(b[32:], h.From)
	binary.LittleEndian.PutUint64(b[40:], uint64(h.Edges))
	binary.LittleEndian.PutUint32(b[48:], h.N)
	binary.LittleEndian.PutUint32(b[52:], h.NY)
	binary.LittleEndian.PutUint32(b[56:], h.NLabels)
	binary.LittleEndian.PutUint32(b[60:], h.NIDs)
	binary.LittleEndian.PutUint32(b[64:], h.NRows)
	binary.LittleEndian.PutUint32(b[68:], h.BodyBytes)
	return append(buf, b[:]...)
}

// ParseHeader decodes and validates the fixed prefix (b must hold at
// least HeaderSize bytes).
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, fmt.Errorf("wire: truncated header: %d bytes, need %d", len(b), HeaderSize)
	}
	if [8]byte(b[0:8]) != magic {
		return h, fmt.Errorf("wire: bad magic %q", b[0:8])
	}
	h.Kind = b[8]
	switch h.Kind {
	case KindSnapshot, KindDelta, KindEmbeddings:
	default:
		return h, fmt.Errorf("wire: unknown frame kind %d", h.Kind)
	}
	flags := b[9]
	if flags&^byte(flagResync|flagSparse) != 0 {
		return h, fmt.Errorf("wire: unknown flags %#x", flags)
	}
	h.Resync = flags&flagResync != 0
	h.Sparse = flags&flagSparse != 0
	if (h.Resync || h.Sparse) && h.Kind != KindDelta {
		return h, fmt.Errorf("wire: flags %#x on frame kind %d", flags, h.Kind)
	}
	if h.Resync && h.Sparse {
		return h, fmt.Errorf("wire: resync frame claims a sparse body")
	}
	if b[10] != 0 || b[11] != 0 {
		return h, fmt.Errorf("wire: nonzero reserved header bytes")
	}
	h.BodyBytes = binary.LittleEndian.Uint32(b[68:])
	if !h.Sparse && h.BodyBytes != 0 {
		return h, fmt.Errorf("wire: sparse body length %d on a dense frame", h.BodyBytes)
	}
	h.K = binary.LittleEndian.Uint32(b[12:])
	h.Epoch = binary.LittleEndian.Uint64(b[16:])
	h.Instance = binary.LittleEndian.Uint64(b[24:])
	h.From = binary.LittleEndian.Uint64(b[32:])
	h.Edges = int64(binary.LittleEndian.Uint64(b[40:]))
	h.N = binary.LittleEndian.Uint32(b[48:])
	h.NY = binary.LittleEndian.Uint32(b[52:])
	h.NLabels = binary.LittleEndian.Uint32(b[56:])
	h.NIDs = binary.LittleEndian.Uint32(b[60:])
	h.NRows = binary.LittleEndian.Uint32(b[64:])
	return h, nil
}

// BodySize validates the header's counts against each other and
// returns the exact byte length of the sections that follow it.
func (h Header) BodySize() (int64, error) {
	// Every count is bounded individually, written as explicit
	// per-field comparisons against the named cap (not a loop over a
	// field table) so the boundedmake analyzer can verify that each
	// Header count is capped before any decoder sizes an allocation
	// from it. A table-driven loop checks the same thing at runtime but
	// is opaque to the static check — and the check is what keeps the
	// next decoder honest.
	if h.K > maxCount {
		return 0, fmt.Errorf("wire: implausible k=%d", h.K)
	}
	if h.N > maxCount {
		return 0, fmt.Errorf("wire: implausible n=%d", h.N)
	}
	if h.NY > maxCount {
		return 0, fmt.Errorf("wire: implausible ny=%d", h.NY)
	}
	if h.NLabels > maxCount {
		return 0, fmt.Errorf("wire: implausible nlabels=%d", h.NLabels)
	}
	if h.NIDs > maxCount {
		return 0, fmt.Errorf("wire: implausible nids=%d", h.NIDs)
	}
	if h.NRows > maxCount {
		return 0, fmt.Errorf("wire: implausible nrows=%d", h.NRows)
	}
	if h.NY != 0 && h.NY != h.N {
		return 0, fmt.Errorf("wire: label array of %d entries for %d vertices", h.NY, h.N)
	}
	if h.NIDs != 0 && h.NIDs != h.NRows {
		return 0, fmt.Errorf("wire: %d row ids for %d rows", h.NIDs, h.NRows)
	}
	if h.NRows > 0 && h.K == 0 {
		return 0, fmt.Errorf("wire: %d rows of width 0", h.NRows)
	}
	if h.Sparse {
		// The blob length comes from the header, but it must at least
		// cover the per-row minimum (one varint byte + the bitmap), and
		// the dense materialization it decodes into must stay within
		// the same bound a dense frame would — both checks keep a
		// hostile header from turning into a huge allocation.
		if h.NIDs != h.NRows {
			return 0, fmt.Errorf("wire: sparse frame with %d ids for %d rows", h.NIDs, h.NRows)
		}
		min := int64(h.NRows) * int64(1+(h.K+7)/8)
		if int64(h.BodyBytes) < min {
			return 0, fmt.Errorf("wire: sparse blob of %d bytes below the %d-byte floor for %d rows",
				h.BodyBytes, min, h.NRows)
		}
		if dense := 4 * int64(h.NRows) * int64(h.K); dense > maxBody {
			return 0, fmt.Errorf("wire: implausible sparse frame of %d dense bytes", dense)
		}
		size := 4*int64(h.NY) + 8*int64(h.NLabels) + int64(h.BodyBytes)
		if size > maxBody {
			return 0, fmt.Errorf("wire: implausible frame body of %d bytes", size)
		}
		return size, nil
	}
	size := 4*int64(h.NY) + 8*int64(h.NLabels) + 4*int64(h.NIDs) + 4*int64(h.NRows)*int64(h.K)
	if size > maxBody {
		return 0, fmt.Errorf("wire: implausible frame body of %d bytes", size)
	}
	return size, nil
}

// Frame is one decoded (or to-be-encoded) wire frame. On encode the
// section counts are derived from the slice lengths; Header count
// fields are ignored. A nil RowIDs means the rows are 0..NRows-1 in
// order (the snapshot case).
type Frame struct {
	Header
	Y      []int32
	Labels []Label
	RowIDs []uint32
	Rows   []float32 // NRows×K, row-major
}

// normalized returns the header with counts derived from the sections.
func (f *Frame) normalized() (Header, error) {
	h := f.Header
	h.NY = uint32(len(f.Y))
	h.NLabels = uint32(len(f.Labels))
	h.NIDs = uint32(len(f.RowIDs))
	if h.K > 0 {
		if len(f.Rows)%int(h.K) != 0 {
			return h, fmt.Errorf("wire: %d row floats not a multiple of k=%d", len(f.Rows), h.K)
		}
		h.NRows = uint32(len(f.Rows) / int(h.K))
	} else if len(f.Rows) > 0 {
		return h, fmt.Errorf("wire: %d row floats with k=0", len(f.Rows))
	} else {
		h.NRows = 0
	}
	h.BodyBytes = 0
	if h.Sparse {
		if h.NIDs != h.NRows {
			return h, fmt.Errorf("wire: sparse frame needs explicit ids: %d ids for %d rows", h.NIDs, h.NRows)
		}
		size, err := sparseBlobSize(f.RowIDs, f.Rows, int(h.K))
		if err != nil {
			return h, err
		}
		h.BodyBytes = uint32(size)
	}
	if _, err := h.BodySize(); err != nil {
		return h, err
	}
	return h, nil
}

// sparseBlobSize computes the exact sparse-encoded byte length of the
// rows, validating that ids ascend strictly (the encoding stores id
// increments, so out-of-order rows are unrepresentable).
func sparseBlobSize(ids []uint32, rows []float32, k int) (int64, error) {
	bitmapLen := (k + 7) / 8
	var size int64
	prev := uint32(0)
	for i, id := range ids {
		delta := uint64(id)
		if i > 0 {
			if id <= prev {
				return 0, fmt.Errorf("wire: sparse row ids not strictly ascending (%d after %d)", id, prev)
			}
			delta = uint64(id - prev)
		}
		prev = id
		size += int64(uvarintLen(delta)) + int64(bitmapLen)
		for _, x := range rows[i*k : (i+1)*k] {
			if math.Float32bits(x) != 0 {
				size += 4
			}
		}
	}
	return size, nil
}

// uvarintLen is the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// EncodedSize returns the exact on-wire byte length of the frame.
func (f *Frame) EncodedSize() (int64, error) {
	h, err := f.normalized()
	if err != nil {
		return 0, err
	}
	body, err := h.BodySize()
	if err != nil {
		return 0, err
	}
	return HeaderSize + body, nil
}

// WriteTo encodes the whole frame (implements io.WriterTo). Large
// streams should prefer the incremental Append helpers; WriteTo is the
// convenience path for tests and small frames.
func (f *Frame) WriteTo(w io.Writer) (int64, error) {
	h, err := f.normalized()
	if err != nil {
		return 0, err
	}
	buf := h.AppendTo(make([]byte, 0, 1<<16))
	buf = AppendI32s(buf, f.Y)
	buf = AppendLabels(buf, f.Labels)
	var total int64
	flush := func() error {
		n, err := w.Write(buf)
		total += int64(n)
		buf = buf[:0]
		return err
	}
	k := int(h.K)
	if h.Sparse {
		if err := flush(); err != nil {
			return total, err
		}
		prev := uint32(0)
		for i, id := range f.RowIDs {
			delta := uint64(id)
			if i > 0 {
				delta = uint64(id - prev)
			}
			prev = id
			buf = appendSparseRow32(buf, delta, f.Rows[i*k:(i+1)*k])
			if len(buf) >= 1<<16 {
				if err := flush(); err != nil {
					return total, err
				}
			}
		}
		if err := flush(); err != nil {
			return total, err
		}
		return total, nil
	}
	buf = AppendU32s(buf, f.RowIDs)
	if err := flush(); err != nil {
		return total, err
	}
	for off := 0; off < len(f.Rows); off += k {
		for _, x := range f.Rows[off : off+k] {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
		}
		if len(buf) >= 1<<16 {
			if err := flush(); err != nil {
				return total, err
			}
		}
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// AppendI32s appends a little-endian int32 section.
func AppendI32s(buf []byte, vals []int32) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

// AppendU32s appends a little-endian uint32 section.
func AppendU32s(buf []byte, vals []uint32) []byte {
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	return buf
}

// AppendLabel appends one label update.
func AppendLabel(buf []byte, l Label) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, l.V)
	return binary.LittleEndian.AppendUint32(buf, uint32(l.Class))
}

// AppendLabels appends a label-update section.
func AppendLabels(buf []byte, ls []Label) []byte {
	for _, l := range ls {
		buf = AppendLabel(buf, l)
	}
	return buf
}

// AppendRow appends one embedding row quantized to little-endian
// float32 — the streaming encoder's per-row hot path.
func AppendRow(buf []byte, row []float64) []byte {
	for _, x := range row {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(x)))
	}
	return buf
}

// AppendSparseRow appends one sparse-encoded delta row: the uvarint id
// increment, the nonzero bitmap, and the nonzero float32 values (see
// the package doc). idDelta is the row's vertex id for the first row
// of a frame and the strictly positive increment over the previous
// row's id after that.
func AppendSparseRow(buf []byte, idDelta uint64, row []float64) []byte {
	buf = binary.AppendUvarint(buf, idDelta)
	base := len(buf)
	for range (len(row) + 7) / 8 {
		buf = append(buf, 0)
	}
	for j, x := range row {
		bits := math.Float32bits(float32(x))
		if bits == 0 {
			continue
		}
		buf[base+j>>3] |= 1 << (j & 7)
		buf = binary.LittleEndian.AppendUint32(buf, bits)
	}
	return buf
}

// appendSparseRow32 is AppendSparseRow for already-quantized rows
// (re-encoding a decoded frame).
func appendSparseRow32(buf []byte, idDelta uint64, row []float32) []byte {
	buf = binary.AppendUvarint(buf, idDelta)
	base := len(buf)
	for range (len(row) + 7) / 8 {
		buf = append(buf, 0)
	}
	for j, x := range row {
		bits := math.Float32bits(x)
		if bits == 0 {
			continue
		}
		buf[base+j>>3] |= 1 << (j & 7)
		buf = binary.LittleEndian.AppendUint32(buf, bits)
	}
	return buf
}

// ZeroCopy reports whether DecodeFrame over data would alias its
// sections in place (little-endian host, 4-byte-aligned base) rather
// than copy them out — callers keeping data mapped need to know which.
func ZeroCopy(data []byte) bool {
	if !hostLittle || len(data) == 0 {
		return false
	}
	return uintptr(unsafe.Pointer(&data[0]))%4 == 0
}

// aliasable reports whether the section starting at b can be aliased
// as 4-byte elements.
func aliasable(b []byte) bool {
	return hostLittle && uintptr(unsafe.Pointer(&b[0]))%4 == 0
}

func asU32s(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	if aliasable(b) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

func asI32s(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	if aliasable(b) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func asF32s(b []byte, n int) []float32 {
	if n == 0 {
		return nil
	}
	if aliasable(b) {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func asLabels(b []byte, n int) []Label {
	if n == 0 {
		return nil
	}
	if aliasable(b) && unsafe.Sizeof(Label{}) == 8 {
		return unsafe.Slice((*Label)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]Label, n)
	for i := range out {
		out[i].V = binary.LittleEndian.Uint32(b[i*8:])
		out[i].Class = int32(binary.LittleEndian.Uint32(b[i*8+4:]))
	}
	return out
}

// decodeSparseRows materializes a sparse blob into explicit ids and a
// dense row-major float32 matrix, enforcing the canonical form: minimal
// varints, strictly ascending in-range ids, clean padding bits, no
// explicitly stored +0.0, and no slack bytes.
func decodeSparseRows(h Header, b []byte) ([]uint32, []float32, error) {
	k := int(h.K)
	bitmapLen := (k + 7) / 8
	ids := make([]uint32, h.NRows)
	rows := make([]float32, int(h.NRows)*k)
	off := 0
	prev := uint64(0)
	for i := range ids {
		delta, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, nil, fmt.Errorf("wire: sparse row %d: bad id varint", i)
		}
		if n > 1 && b[off+n-1] == 0 {
			return nil, nil, fmt.Errorf("wire: sparse row %d: non-minimal id varint", i)
		}
		off += n
		id := delta
		if i > 0 {
			if delta == 0 {
				return nil, nil, fmt.Errorf("wire: sparse row %d: ids not strictly ascending", i)
			}
			// Bound the delta before adding: prev+delta near 2^64 wraps
			// to a small id that would pass the range check below while
			// breaking the ascending-ids invariant. prev < h.N always
			// holds here (row i-1 was accepted), so the subtraction
			// cannot underflow.
			if delta > uint64(h.N)-1-prev {
				return nil, nil, fmt.Errorf("wire: sparse row %d: id delta %d past the last vertex (prev %d, n=%d)",
					i, delta, prev, h.N)
			}
			id = prev + delta
		}
		if id >= uint64(h.N) {
			return nil, nil, fmt.Errorf("wire: sparse row %d: vertex %d out of range (n=%d)", i, id, h.N)
		}
		ids[i] = uint32(id)
		prev = id
		if off+bitmapLen > len(b) {
			return nil, nil, fmt.Errorf("wire: sparse row %d: truncated bitmap", i)
		}
		bm := b[off : off+bitmapLen]
		off += bitmapLen
		if k%8 != 0 && bm[bitmapLen-1]>>(k%8) != 0 {
			return nil, nil, fmt.Errorf("wire: sparse row %d: padding bits set", i)
		}
		row := rows[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			if bm[j>>3]&(1<<(j&7)) == 0 {
				continue
			}
			if off+4 > len(b) {
				return nil, nil, fmt.Errorf("wire: sparse row %d: truncated values", i)
			}
			bits := binary.LittleEndian.Uint32(b[off:])
			off += 4
			if bits == 0 {
				return nil, nil, fmt.Errorf("wire: sparse row %d: explicit zero value", i)
			}
			row[j] = math.Float32frombits(bits)
		}
	}
	if off != len(b) {
		return nil, nil, fmt.Errorf("wire: sparse blob has %d slack bytes", len(b)-off)
	}
	return ids, rows, nil
}

// frameFromBody slices (or copies, on hosts where aliasing is unsound)
// the validated sections out of the body bytes. Sparse rows are always
// materialized — only dense sections can alias.
func frameFromBody(h Header, body []byte) (*Frame, error) {
	f := &Frame{Header: h}
	off := 0
	f.Y = asI32s(body[off:], int(h.NY))
	off += 4 * int(h.NY)
	f.Labels = asLabels(body[off:], int(h.NLabels))
	off += 8 * int(h.NLabels)
	if h.Sparse {
		ids, rows, err := decodeSparseRows(h, body[off:])
		if err != nil {
			return nil, err
		}
		f.RowIDs, f.Rows = ids, rows
		return f, nil
	}
	f.RowIDs = asU32s(body[off:], int(h.NIDs))
	off += 4 * int(h.NIDs)
	f.Rows = asF32s(body[off:], int(h.NRows)*int(h.K))
	return f, nil
}

// DecodeFrame parses one complete frame held in memory. On
// little-endian hosts with a 4-byte-aligned data base (see ZeroCopy)
// the returned sections alias data — the caller must keep data valid
// (e.g. mapped) for the frame's lifetime. Trailing bytes are an error:
// a frame is a complete response body, not a stream element.
func DecodeFrame(data []byte) (*Frame, error) {
	h, err := ParseHeader(data)
	if err != nil {
		return nil, err
	}
	size, err := h.BodySize()
	if err != nil {
		return nil, err
	}
	if int64(len(data)-HeaderSize) != size {
		return nil, fmt.Errorf("wire: frame body is %d bytes, header promises %d",
			len(data)-HeaderSize, size)
	}
	return frameFromBody(h, data[HeaderSize:])
}

// ReadFrame reads and decodes one complete frame from r (a response
// body). The sections never alias the reader's buffers. A truncated or
// corrupted stream returns an error, never panics.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hb [HeaderSize]byte
	if _, err := io.ReadFull(r, hb[:]); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return nil, fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return nil, err
	}
	h, err := ParseHeader(hb[:])
	if err != nil {
		return nil, err
	}
	size, err := h.BodySize()
	if err != nil {
		return nil, err
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return nil, fmt.Errorf("wire: truncated frame body: %w", err)
		}
		return nil, err
	}
	return frameFromBody(h, body)
}
