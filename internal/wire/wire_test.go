package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/xrand"
)

// randFrame builds a frame with adversarial float content: raw random
// bit patterns reinterpreted as float32, so NaNs, infinities, denormals
// and negative zero all ride along. Bit-exactness is compared on the
// bits, never with ==.
func randFrame(r *xrand.Rand) *Frame {
	k := 1 + r.Intn(8)
	n := r.Intn(200)
	nrows := r.Intn(n + 1)
	f := &Frame{Header: Header{
		K: uint32(k), N: uint32(n),
		Epoch: r.Uint64(), Instance: r.Uint64(), From: r.Uint64(),
		Edges: int64(r.Uint64() >> 1),
	}}
	switch r.Intn(3) {
	case 0:
		f.Kind = KindSnapshot
		f.Y = make([]int32, n)
		for i := range f.Y {
			f.Y[i] = int32(r.Uint64())
		}
		nrows = n
	case 1:
		f.Kind = KindDelta
		if r.Intn(4) == 0 {
			f.Resync = true
			return f
		}
		f.Labels = make([]Label, r.Intn(10))
		for i := range f.Labels {
			f.Labels[i] = Label{V: uint32(r.Intn(n + 1)), Class: int32(r.Intn(5)) - 1}
		}
		if r.Intn(2) == 0 {
			// Sparse rows: strictly ascending in-range ids, zero-heavy
			// values (the shape the encoding exists for — but the dense
			// random fill below still rides along sometimes, since all
			// bit patterns must survive).
			f.Sparse = true
			id := r.Intn(3)
			var ids []uint32
			for len(ids) < nrows && id < n {
				ids = append(ids, uint32(id))
				id += 1 + r.Intn(5)
			}
			f.RowIDs = ids
			f.Rows = make([]float32, len(ids)*k)
			for i := range f.Rows {
				if r.Intn(10) < 7 {
					continue // exact +0.0, elided on the wire
				}
				f.Rows[i] = math.Float32frombits(uint32(r.Uint64()))
			}
			return f
		}
		f.RowIDs = make([]uint32, nrows)
		for i := range f.RowIDs {
			f.RowIDs[i] = uint32(r.Intn(n + 1))
		}
	default:
		f.Kind = KindEmbeddings
		f.RowIDs = make([]uint32, nrows)
		for i := range f.RowIDs {
			f.RowIDs[i] = uint32(r.Intn(n + 1))
		}
	}
	f.Rows = make([]float32, nrows*k)
	for i := range f.Rows {
		f.Rows[i] = math.Float32frombits(uint32(r.Uint64()))
	}
	return f
}

func framesEqual(t *testing.T, want, got *Frame) {
	t.Helper()
	if want.Kind != got.Kind || want.Resync != got.Resync ||
		want.Sparse != got.Sparse ||
		want.K != got.K || want.N != got.N ||
		want.Epoch != got.Epoch || want.Instance != got.Instance ||
		want.From != got.From || want.Edges != got.Edges {
		t.Fatalf("header mismatch:\nwant %+v\ngot  %+v", want.Header, got.Header)
	}
	if len(want.Y) != len(got.Y) || len(want.Labels) != len(got.Labels) ||
		len(want.RowIDs) != len(got.RowIDs) || len(want.Rows) != len(got.Rows) {
		t.Fatalf("section lengths: want %d/%d/%d/%d got %d/%d/%d/%d",
			len(want.Y), len(want.Labels), len(want.RowIDs), len(want.Rows),
			len(got.Y), len(got.Labels), len(got.RowIDs), len(got.Rows))
	}
	for i := range want.Y {
		if want.Y[i] != got.Y[i] {
			t.Fatalf("Y[%d] = %d, want %d", i, got.Y[i], want.Y[i])
		}
	}
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			t.Fatalf("Labels[%d] = %+v, want %+v", i, got.Labels[i], want.Labels[i])
		}
	}
	for i := range want.RowIDs {
		if want.RowIDs[i] != got.RowIDs[i] {
			t.Fatalf("RowIDs[%d] = %d, want %d", i, got.RowIDs[i], want.RowIDs[i])
		}
	}
	for i := range want.Rows {
		if math.Float32bits(want.Rows[i]) != math.Float32bits(got.Rows[i]) {
			t.Fatalf("Rows[%d] = %x, want %x (not bit-identical)",
				i, math.Float32bits(got.Rows[i]), math.Float32bits(want.Rows[i]))
		}
	}
}

// TestFrameRoundTripProperty is the bit-exactness property test: any
// encodable frame decodes back — via both the reader and the in-place
// decoder — to the same bits, including NaN payloads, and the encoded
// length matches EncodedSize exactly.
func TestFrameRoundTripProperty(t *testing.T) {
	r := xrand.New(211)
	for trial := 0; trial < 300; trial++ {
		f := randFrame(r)
		var buf bytes.Buffer
		n, err := f.WriteTo(&buf)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		want, err := f.EncodedSize()
		if err != nil || n != int64(buf.Len()) || n != want {
			t.Fatalf("trial %d: wrote %d bytes, buffer %d, EncodedSize %d (%v)",
				trial, n, buf.Len(), want, err)
		}
		got, err := ReadFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: ReadFrame: %v", trial, err)
		}
		framesEqual(t, f, got)
		got2, err := DecodeFrame(buf.Bytes())
		if err != nil {
			t.Fatalf("trial %d: DecodeFrame: %v", trial, err)
		}
		framesEqual(t, f, got2)
	}
}

// TestTruncatedAndCorruptedFrames: every prefix of a valid frame must
// decode to an error (never a panic, never silent success), as must
// targeted corruptions of the header.
func TestTruncatedAndCorruptedFrames(t *testing.T) {
	r := xrand.New(223)
	f := randFrame(r)
	f.Kind = KindSnapshot
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 1 + len(full)/97 {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d decoded without error", cut, len(full))
		}
		if _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("in-place truncation at %d/%d decoded without error", cut, len(full))
		}
	}
	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), full...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":      corrupt(func(b []byte) { b[0] = 'X' }),
		"unknown kind":   corrupt(func(b []byte) { b[8] = 99 }),
		"unknown flags":  corrupt(func(b []byte) { b[9] = 0xFE }),
		"reserved set":   corrupt(func(b []byte) { b[10] = 1 }),
		"huge nrows":     corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[64:], 1<<31+5) }),
		"ny mismatch":    corrupt(func(b []byte) { binary.LittleEndian.PutUint32(b[52:], 3) }),
		"trailing bytes": append(append([]byte(nil), full...), 0, 0, 0, 0),
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: DecodeFrame accepted corrupted frame", name)
		}
	}
	// Resync is only legal on deltas.
	if _, err := DecodeFrame(corrupt(func(b []byte) { b[9] = 1 })); err == nil {
		t.Error("resync flag on a snapshot frame accepted")
	}
}

// TestSparseFrameCorruptions exercises the sparse decoder's canonical-
// form enforcement over a hand-built frame with a known byte layout:
// k=5 (one bitmap byte, three padding bits), two rows — vertex 2
// all-zero, vertex 7 with one nonzero column — so every interesting
// offset is addressable.
func TestSparseFrameCorruptions(t *testing.T) {
	f := &Frame{Header: Header{
		Kind: KindDelta, Sparse: true, K: 5, N: 10, Epoch: 3, Instance: 9, From: 2,
	}}
	f.RowIDs = []uint32{2, 7}
	f.Rows = make([]float32, 10)
	f.Rows[5+3] = 1.5 // row 1 (vertex 7), column 3
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Blob layout: [0x02][bm=0x00] [0x05][bm=0x08][f32 1.5] = 8 bytes.
	if got := binary.LittleEndian.Uint32(full[68:]); got != 8 {
		t.Fatalf("expected a 9-byte blob, header says %d — layout drifted, fix the offsets below", got)
	}
	decoded, err := DecodeFrame(full)
	if err != nil {
		t.Fatal(err)
	}
	framesEqual(t, f, decoded)
	blob := HeaderSize // no Y, no labels: blob starts right after the header
	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), full...)
		mutate(b)
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: DecodeFrame accepted the corrupted frame", name)
		}
	}
	corrupt("ids not ascending", func(b []byte) { b[blob+2] = 0 })
	corrupt("id out of range", func(b []byte) { b[blob+2] = 9 }) // 2+9 ≥ n=10
	corrupt("padding bits set", func(b []byte) { b[blob+3] |= 1 << 7 })
	corrupt("explicit zero value", func(b []byte) {
		copy(b[blob+4:blob+8], []byte{0, 0, 0, 0})
	})
	corrupt("resync and sparse", func(b []byte) { b[9] |= 1 })
	corrupt("body length below floor", func(b []byte) { binary.LittleEndian.PutUint32(b[68:], 3) })
	corrupt("body length too long", func(b []byte) { binary.LittleEndian.PutUint32(b[68:], 10) })

	// Slack bytes inside the declared blob must be rejected even when
	// the header's length is self-consistent.
	slack := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(slack[68:], 12)
	slack = append(slack, 0, 0, 0, 0)
	if _, err := DecodeFrame(slack); err == nil {
		t.Error("slack bytes after the last sparse row accepted")
	}
	// A non-minimal varint encodes the same frame in different bytes —
	// canonical form requires the decoder to reject it.
	nonMin := append([]byte(nil), full[:HeaderSize]...)
	binary.LittleEndian.PutUint32(nonMin[68:], 9)
	nonMin = append(nonMin, 0x82, 0x00) // vertex 2 as a 2-byte varint
	nonMin = append(nonMin, full[blob+1:]...)
	if _, err := DecodeFrame(nonMin); err == nil {
		t.Error("non-minimal id varint accepted")
	}
	// The sparse flag is delta-only.
	dense := &Frame{Header: Header{Kind: KindSnapshot, K: 2, N: 1}}
	dense.Y = []int32{0}
	dense.Rows = []float32{1, 2}
	var db bytes.Buffer
	if _, err := dense.WriteTo(&db); err != nil {
		t.Fatal(err)
	}
	sb := db.Bytes()
	sb[9] |= 1 << 1
	if _, err := DecodeFrame(sb); err == nil {
		t.Error("sparse flag on a snapshot frame accepted")
	}
}

// TestHostileCountHeaders: a 72-byte header whose counts are huge must
// decode to an error, never a panic and never a giant allocation. The
// first case is the historical overflow: with nrows=k=2^31 the dense
// term 4·nrows·k wraps int64 to exactly 0, BodySize used to return
// (0, nil), and DecodeFrame then panicked indexing the empty body.
func TestHostileCountHeaders(t *testing.T) {
	cases := map[string]Header{
		"nrows=k=2^31 (product wraps to 0)": {
			Kind: KindSnapshot, K: 1 << 31, N: 1 << 31, NRows: 1 << 31},
		"nrows=k=2^30 (product 2^62 over body cap)": {
			Kind: KindSnapshot, K: 1 << 30, N: 1 << 30, NRows: 1 << 30},
		"ny=n=2^31 (8 GiB label section)": {
			Kind: KindSnapshot, N: 1 << 31, NY: 1 << 31},
		"ny=n=2^28 (1 GiB body over cap)": {
			Kind: KindSnapshot, N: 1 << 28, NY: 1 << 28},
	}
	for name, h := range cases {
		b := h.AppendTo(nil)
		if _, err := h.BodySize(); err == nil {
			t.Errorf("%s: BodySize accepted the header", name)
		}
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: DecodeFrame accepted the header", name)
		}
		if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: ReadFrame accepted the header", name)
		}
	}
}

// TestSparseIDDeltaWraparound: a minimal 10-byte varint delta near 2^64
// makes prev+delta wrap to a small in-range id (5 + (2^64-3) = 2); the
// decoder must reject it rather than accept out-of-order row ids.
func TestSparseIDDeltaWraparound(t *testing.T) {
	h := Header{Kind: KindDelta, Sparse: true, K: 5, N: 10,
		NIDs: 2, NRows: 2, BodyBytes: 13}
	b := h.AppendTo(nil)
	b = append(b, 0x05, 0x00)                 // row 0: vertex 5, all-zero bitmap
	b = binary.AppendUvarint(b, ^uint64(0)-2) // row 1: delta 2^64-3 wraps to id 2
	b = append(b, 0x00)                       // row 1 bitmap
	if len(b) != HeaderSize+13 {
		t.Fatalf("frame is %d bytes, expected %d — fix BodyBytes above", len(b)-HeaderSize, 13)
	}
	fr, err := DecodeFrame(b)
	if err == nil {
		t.Fatalf("wrapping sparse id delta accepted: ids=%v", fr.RowIDs)
	}
}

// FuzzDecodeFrame: arbitrary bytes must never panic the decoders.
func FuzzDecodeFrame(f *testing.F) {
	r := xrand.New(227)
	for i := 0; i < 4; i++ {
		var buf bytes.Buffer
		if _, err := randFrame(r).WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte("GEEWIRE1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if fr, err := DecodeFrame(data); err == nil {
			// Anything accepted must re-encode to the same bytes.
			var buf bytes.Buffer
			if _, err := fr.WriteTo(&buf); err != nil {
				t.Fatalf("accepted frame failed to re-encode: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Fatal("accepted frame re-encodes differently")
			}
		}
		_, _ = ReadFrame(bytes.NewReader(data))
	})
}
