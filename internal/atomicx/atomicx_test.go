package atomicx

import (
	"math"
	"sync"
	"testing"
)

func TestAddFloat64Serial(t *testing.T) {
	var x float64
	if got := AddFloat64(&x, 1.5); got != 1.5 {
		t.Fatalf("returned %v want 1.5", got)
	}
	AddFloat64(&x, 2.25)
	if x != 3.75 {
		t.Fatalf("x=%v want 3.75", x)
	}
	AddFloat64(&x, -3.75)
	if x != 0 {
		t.Fatalf("x=%v want 0", x)
	}
}

// TestAddFloat64Concurrent is the paper's Figure 1 scenario: many workers
// adding to the same cell must lose no updates. Deltas are small integers
// so every partial sum is exactly representable and the check is exact.
func TestAddFloat64Concurrent(t *testing.T) {
	const workers = 16
	const perWorker = 50_000
	var x float64
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				AddFloat64(&x, 1)
			}
		}()
	}
	wg.Wait()
	if x != workers*perWorker {
		t.Fatalf("lost updates: x=%v want %v", x, workers*perWorker)
	}
}

func TestAddFloat32Concurrent(t *testing.T) {
	const workers = 8
	const perWorker = 20_000
	var x float32
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				AddFloat32(&x, 0.5)
			}
		}()
	}
	wg.Wait()
	if x != workers*perWorker/2 {
		t.Fatalf("lost updates: x=%v want %v", x, workers*perWorker/2)
	}
}

func TestMinFloat64(t *testing.T) {
	x := math.Inf(1)
	if !MinFloat64(&x, 5) {
		t.Fatal("min should have replaced +Inf")
	}
	if MinFloat64(&x, 7) {
		t.Fatal("7 should not replace 5")
	}
	if !MinFloat64(&x, -1) {
		t.Fatal("-1 should replace 5")
	}
	if x != -1 {
		t.Fatalf("x=%v want -1", x)
	}
	if MinFloat64(&x, -1) {
		t.Fatal("equal value must not report replacement")
	}
}

func TestMinFloat64ConcurrentFindsGlobalMin(t *testing.T) {
	x := math.Inf(1)
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				MinFloat64(&x, float64((g*10_000+i)%7919))
			}
		}(g)
	}
	wg.Wait()
	if x != 0 {
		t.Fatalf("global min %v want 0", x)
	}
}

func TestMaxFloat64(t *testing.T) {
	x := math.Inf(-1)
	if !MaxFloat64(&x, 5) {
		t.Fatal("max should replace -Inf")
	}
	if MaxFloat64(&x, 3) {
		t.Fatal("3 should not replace 5")
	}
	if x != 5 {
		t.Fatalf("x=%v want 5", x)
	}
}

func TestLoadStoreFloat64(t *testing.T) {
	var x float64
	StoreFloat64(&x, 42.5)
	if LoadFloat64(&x) != 42.5 {
		t.Fatalf("load=%v", LoadFloat64(&x))
	}
}

func TestCASUint32(t *testing.T) {
	var x uint32
	if !CASUint32(&x, 0, 7) {
		t.Fatal("CAS 0->7 failed")
	}
	if CASUint32(&x, 0, 9) {
		t.Fatal("CAS with stale old succeeded")
	}
	if x != 7 {
		t.Fatalf("x=%d want 7", x)
	}
}

// TestAddFloat64ManyCells mimics the GEE update pattern: concurrent adds
// scattered over a vector, exact integer deltas, exact final check.
func TestAddFloat64ManyCells(t *testing.T) {
	const cells = 64
	const workers = 8
	const perWorker = 30_000
	vec := make([]float64, cells)
	var wg sync.WaitGroup
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				AddFloat64(&vec[(g+i)%cells], 2)
			}
		}(g)
	}
	wg.Wait()
	var total float64
	for _, v := range vec {
		total += v
	}
	if total != 2*workers*perWorker {
		t.Fatalf("total=%v want %v", total, 2*workers*perWorker)
	}
}
