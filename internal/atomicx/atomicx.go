// Package atomicx provides lock-free atomic read-modify-write operations
// on floating point memory locations.
//
// It is the Go analog of Ligra's writeAdd/writeMin intrinsics, which the
// paper uses to make the GEE edge map race-free: concurrent edge updates
// to the same embedding cell Z(u, k) are resolved with a compare-and-swap
// loop over the float's bit pattern instead of a lock.
//
// The unsafe.Pointer reinterpretation of *float64 as *uint64 is confined
// to this package. It is valid because float64 and uint64 have identical
// size and alignment on all supported Go platforms.
package atomicx

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// AddFloat64 atomically performs *p += v and returns the new value.
// It is lock-free: a CAS retry loop over the bit pattern of *p.
//
//gee:noalloc
func AddFloat64(p *float64, v float64) float64 {
	u := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(u)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(u, old, next) {
			return math.Float64frombits(next)
		}
	}
}

// AddFloat32 atomically performs *p += v and returns the new value.
//
//gee:noalloc
func AddFloat32(p *float32, v float32) float32 {
	u := (*uint32)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint32(u)
		next := math.Float32bits(math.Float32frombits(old) + v)
		if atomic.CompareAndSwapUint32(u, old, next) {
			return math.Float32frombits(next)
		}
	}
}

// MinFloat64 atomically performs *p = min(*p, v). It returns true when v
// replaced the previous value (Ligra's writeMin contract, used by e.g.
// Bellman-Ford style algorithms on the same engine).
//
//gee:noalloc
func MinFloat64(p *float64, v float64) bool {
	u := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(u)
		cur := math.Float64frombits(old)
		if v >= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(u, old, math.Float64bits(v)) {
			return true
		}
	}
}

// MaxFloat64 atomically performs *p = max(*p, v), returning true when v
// replaced the previous value.
//
//gee:noalloc
func MaxFloat64(p *float64, v float64) bool {
	u := (*uint64)(unsafe.Pointer(p))
	for {
		old := atomic.LoadUint64(u)
		cur := math.Float64frombits(old)
		if v <= cur {
			return false
		}
		if atomic.CompareAndSwapUint64(u, old, math.Float64bits(v)) {
			return true
		}
	}
}

// LoadFloat64 atomically loads *p.
//
//gee:noalloc
func LoadFloat64(p *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(p))))
}

// StoreFloat64 atomically stores v into *p.
//
//gee:noalloc
func StoreFloat64(p *float64, v float64) {
	atomic.StoreUint64((*uint64)(unsafe.Pointer(p)), math.Float64bits(v))
}

// CASUint32 is Ligra's CAS primitive on uint32 cells, exposed for frontier
// flag updates (claim a vertex exactly once during a sparse edge map).
//
//gee:noalloc
func CASUint32(p *uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(p, old, new)
}
