//go:build race

// Package race exposes whether the Go race detector is compiled in.
// The GEE-Ligra "atomics off" ablation (LigraParallelUnsafe) performs
// deliberately racy adds — the exact experiment the paper runs in §IV.
// Under `-race` builds that implementation substitutes atomic adds so
// the detector stays usable on the rest of the repository.
package race

// Enabled reports whether the race detector is active in this build.
const Enabled = true
