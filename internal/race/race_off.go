//go:build !race

// Package race exposes whether the Go race detector is compiled in.
// See race_on.go for why the GEE ablation consults it.
package race

// Enabled reports whether the race detector is active in this build.
const Enabled = false
