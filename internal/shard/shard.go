// Package shard partitions the vertex space of a GEE embedding across
// N independent dyn.DynamicEmbedder instances, the unit of scale-out
// for the serving tier. The partition is contiguous: shard i owns the
// vertex range [Bounds[i], Bounds[i+1]) and is the authority for those
// rows of Z and those entries of Y.
//
// The one-pass GEE formulation makes the split exact rather than
// approximate. An edge (u, v) contributes to exactly the two endpoint
// rows, so delivering it to owner(u) and owner(v) (once, when they
// coincide) gives every owner the full incident mass of its rows.
// Labels are broadcast to every shard: the 1/n_k normalization needs
// the *global* class counts, and a relabel of v slides mass inside the
// rows of v's neighbors — which may live on any shard. Each shard
// therefore runs the unrestricted fold over the full vertex range (a
// cut edge also deposits mass into the non-owned endpoint's row, a
// consistent partial sum that is simply never published); only the
// publish-time normalization and delta tracking are restricted to the
// owned range via dyn.Options.OwnedLo/OwnedHi. The union of the owned
// row ranges across shards is, bit for bit under serial folds and
// within float-summation reordering otherwise, the single-embedder
// embedding — the property test in this package pins that down.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/dyn"
	"repro/internal/graph"
)

// Partition is a contiguous split of the vertex range [0, N) into
// Shards() ranges. Immutable after NewPartition; safe for concurrent
// use.
type Partition struct {
	N      int
	bounds []uint32 // len Shards()+1; bounds[0]=0, bounds[last]=N, strictly increasing
}

// NewPartition splits n vertices into `shards` contiguous ranges of
// near-equal width (the first n mod shards ranges are one wider). Every
// shard owns at least one vertex, so shards must not exceed n.
func NewPartition(n, shards int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: %d vertices", n)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("shard: %d shards", shards)
	}
	if shards > n {
		return nil, fmt.Errorf("shard: %d shards for %d vertices (every shard must own at least one)", shards, n)
	}
	bounds := make([]uint32, shards+1)
	width, extra := n/shards, n%shards
	at := 0
	for i := 0; i < shards; i++ {
		bounds[i] = uint32(at)
		at += width
		if i < extra {
			at++
		}
	}
	bounds[shards] = uint32(n)
	return &Partition{N: n, bounds: bounds}, nil
}

// NewPartitionFromBounds rebuilds a partition from serialized bounds
// (as carried in Meta): len(bounds) = shards+1, bounds[0] = 0, strictly
// increasing, bounds[last] = n.
func NewPartitionFromBounds(n int, bounds []uint32) (*Partition, error) {
	if n <= 0 || len(bounds) < 2 {
		return nil, fmt.Errorf("shard: bad bounds (n=%d, %d entries)", n, len(bounds))
	}
	if bounds[0] != 0 || int(bounds[len(bounds)-1]) != n {
		return nil, fmt.Errorf("shard: bounds must span [0,%d), got [%d,%d]", n, bounds[0], bounds[len(bounds)-1])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("shard: bounds not strictly increasing at %d", i)
		}
	}
	return &Partition{N: n, bounds: append([]uint32(nil), bounds...)}, nil
}

// Shards returns the number of ranges.
func (p *Partition) Shards() int { return len(p.bounds) - 1 }

// Bounds returns a copy of the range boundaries (len Shards()+1), the
// serializable form carried in Meta.
func (p *Partition) Bounds() []uint32 { return append([]uint32(nil), p.bounds...) }

// Owner returns the shard owning vertex v. A v at or past N maps to the
// last shard (callers validate range; this keeps Owner total).
func (p *Partition) Owner(v graph.NodeID) int {
	// First bound strictly above v, minus one: bounds[i] <= v < bounds[i+1].
	i := sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > v })
	if i <= 0 {
		return 0
	}
	if i >= len(p.bounds) {
		return p.Shards() - 1
	}
	return i - 1
}

// Range returns shard i's owned vertex range [lo, hi).
func (p *Partition) Range(i int) (lo, hi uint32) { return p.bounds[i], p.bounds[i+1] }

// EpochVector is a per-shard published-epoch vector, the sharded
// generalization of the scalar ack epoch: a write acked with vector E
// is reflected in any read whose shard-s data epoch is >= E[s] for
// every shard s in E. JSON-marshals as an object with stringified shard
// ids ({"0":5,"1":7}).
type EpochVector map[int]uint64

// Max returns the largest epoch in the vector (0 when empty) — the
// scalar summary used where a single epoch is displayed.
func (ev EpochVector) Max() uint64 {
	var m uint64
	for _, e := range ev {
		if e > m {
			m = e
		}
	}
	return m
}

// Covers reports whether every shard in want has published at least as
// far in ev — the read-your-writes check for a read view against an ack
// vector.
func (ev EpochVector) Covers(want EpochVector) bool {
	for s, e := range want {
		if ev[s] < e {
			return false
		}
	}
	return true
}

// Meta is the serializable partition metadata served at /v1/partition:
// everything a client needs to route reads, interpret per-shard
// snapshot sections, and detect per-shard restarts.
type Meta struct {
	Shards int `json:"shards"`
	N      int `json:"n"`
	K      int `json:"k"`
	// Bounds are the owned-range boundaries: shard i owns
	// [Bounds[i], Bounds[i+1]).
	Bounds []uint32 `json:"bounds"`
	// Instances[i] identifies shard i's embedder lifetime; a changed
	// instance means that shard restarted and its epochs reset.
	Instances []uint64 `json:"instances"`
	// Epochs is the published epoch vector at response time.
	Epochs EpochVector `json:"epochs"`
}

// Shard is one unit of the sharded serving tier: an embedder spanning
// the full vertex range whose published rows are restricted to
// [Lo, Hi).
type Shard struct {
	ID     int
	Lo, Hi uint32
	D      *dyn.DynamicEmbedder
}

// NewShards builds one embedder per partition range over the shared
// initial labels. Every shard spans the full vertex range (folds are
// global; see the package comment) with its publish window set to its
// owned range. opts applies to every shard; a zero opts.K is inferred
// once so all shards agree on the embedding width.
func NewShards(p *Partition, y []int32, opts dyn.Options) ([]*Shard, error) {
	if len(y) != p.N {
		return nil, fmt.Errorf("shard: %d labels for %d vertices", len(y), p.N)
	}
	if opts.K == 0 {
		for _, c := range y {
			if int(c)+1 > opts.K {
				opts.K = int(c) + 1
			}
		}
	}
	shards := make([]*Shard, p.Shards())
	for i := range shards {
		lo, hi := p.Range(i)
		o := opts
		o.OwnedLo, o.OwnedHi = int(lo), int(hi)
		d, err := dyn.New(p.N, y, o)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		shards[i] = &Shard{ID: i, Lo: lo, Hi: hi, D: d}
	}
	return shards, nil
}

// Split scatters one write batch across the partition: each edge
// operation is delivered to its endpoints' owners (once when they
// coincide, to both when the edge is cut) and label updates are
// broadcast to every shard (class counts are global, and a relabel
// touches neighbor rows on any shard). Operation order within each
// sub-batch preserves the original batch order, so per-row fold order —
// and therefore the published floats under serial folds — matches the
// unsharded embedder exactly. Returns the per-shard sub-batches and the
// number of cut edge operations (delivered twice).
func Split(p *Partition, b dyn.Batch) (subs []dyn.Batch, cut int) {
	subs = make([]dyn.Batch, p.Shards())
	route := func(dst func(s *dyn.Batch) *[]graph.Edge, edges []graph.Edge) {
		for _, e := range edges {
			ou, ov := p.Owner(e.U), p.Owner(e.V)
			lu := dst(&subs[ou])
			*lu = append(*lu, e)
			if ov != ou {
				lv := dst(&subs[ov])
				*lv = append(*lv, e)
				cut++
			}
		}
	}
	route(func(s *dyn.Batch) *[]graph.Edge { return &s.Insert }, b.Insert)
	route(func(s *dyn.Batch) *[]graph.Edge { return &s.Delete }, b.Delete)
	if len(b.Labels) > 0 {
		for i := range subs {
			subs[i].Labels = b.Labels
		}
	}
	return subs, cut
}

// Ops returns the operation count of one sub-batch (the coalescer's
// accounting unit).
func Ops(b dyn.Batch) int { return len(b.Insert) + len(b.Delete) + len(b.Labels) }
