package shard

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dyn"
	"repro/internal/graph"
	"repro/internal/labels"
)

func TestNewPartition(t *testing.T) {
	cases := []struct {
		n, shards int
		ok        bool
		bounds    []uint32
	}{
		{10, 1, true, []uint32{0, 10}},
		{10, 2, true, []uint32{0, 5, 10}},
		{10, 3, true, []uint32{0, 4, 7, 10}},
		{10, 4, true, []uint32{0, 3, 6, 8, 10}},
		{3, 3, true, []uint32{0, 1, 2, 3}},
		{2, 3, false, nil},
		{0, 1, false, nil},
		{10, 0, false, nil},
		{10, -1, false, nil},
	}
	for _, c := range cases {
		p, err := NewPartition(c.n, c.shards)
		if (err == nil) != c.ok {
			t.Fatalf("NewPartition(%d, %d): err=%v, want ok=%v", c.n, c.shards, err, c.ok)
		}
		if err != nil {
			continue
		}
		got := p.Bounds()
		if len(got) != len(c.bounds) {
			t.Fatalf("NewPartition(%d, %d): bounds %v, want %v", c.n, c.shards, got, c.bounds)
		}
		for i := range got {
			if got[i] != c.bounds[i] {
				t.Fatalf("NewPartition(%d, %d): bounds %v, want %v", c.n, c.shards, got, c.bounds)
			}
		}
		if p.Shards() != c.shards {
			t.Fatalf("Shards() = %d, want %d", p.Shards(), c.shards)
		}
	}
}

func TestOwnerCoversEveryVertex(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		p, err := NewPartition(100, shards)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 100; v++ {
			s := p.Owner(graph.NodeID(v))
			lo, hi := p.Range(s)
			if uint32(v) < lo || uint32(v) >= hi {
				t.Fatalf("shards=%d: Owner(%d)=%d owns [%d,%d)", shards, v, s, lo, hi)
			}
		}
		// Out-of-range vertices map to the last shard (Owner is total).
		if got := p.Owner(100); got != shards-1 {
			t.Fatalf("shards=%d: Owner(100)=%d, want %d", shards, got, shards-1)
		}
	}
}

func TestNewPartitionFromBounds(t *testing.T) {
	p, err := NewPartition(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewPartitionFromBounds(10, p.Bounds())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		if p.Owner(graph.NodeID(v)) != q.Owner(graph.NodeID(v)) {
			t.Fatalf("round-tripped partition disagrees at %d", v)
		}
	}
	for _, bad := range [][]uint32{
		nil,
		{0},
		{0, 5},        // does not span to n
		{1, 10},       // does not start at 0
		{0, 5, 5, 10}, // not strictly increasing
		{0, 7, 3, 10}, // decreasing
		{0, 10, 10},   // duplicate terminal
	} {
		if _, err := NewPartitionFromBounds(10, bad); err == nil {
			t.Fatalf("NewPartitionFromBounds(10, %v): want error", bad)
		}
	}
}

func TestEpochVector(t *testing.T) {
	var empty EpochVector
	if empty.Max() != 0 {
		t.Fatalf("empty Max = %d", empty.Max())
	}
	ev := EpochVector{0: 5, 1: 7, 2: 3}
	if ev.Max() != 7 {
		t.Fatalf("Max = %d, want 7", ev.Max())
	}
	if !ev.Covers(EpochVector{0: 5, 2: 3}) {
		t.Fatal("Covers(subset at equal epochs) = false")
	}
	if !ev.Covers(nil) {
		t.Fatal("Covers(nil) = false")
	}
	if ev.Covers(EpochVector{1: 8}) {
		t.Fatal("Covers(ahead) = true")
	}
	if ev.Covers(EpochVector{3: 1}) {
		t.Fatal("Covers(unknown shard) = true")
	}
}

func TestSplitRoutesAndCounts(t *testing.T) {
	p, err := NewPartition(10, 2) // [0,5) and [5,10)
	if err != nil {
		t.Fatal(err)
	}
	b := dyn.Batch{
		Insert: []graph.Edge{
			{U: 0, V: 1, W: 1}, // local to shard 0
			{U: 6, V: 7, W: 1}, // local to shard 1
			{U: 2, V: 8, W: 1}, // cut: both shards
		},
		Delete: []graph.Edge{
			{U: 4, V: 5, W: 1}, // cut
		},
		Labels: []dyn.LabelUpdate{{V: 3, Class: 1}},
	}
	subs, cut := Split(p, b)
	if cut != 2 {
		t.Fatalf("cut = %d, want 2", cut)
	}
	if len(subs) != 2 {
		t.Fatalf("%d sub-batches", len(subs))
	}
	if got := len(subs[0].Insert); got != 2 {
		t.Fatalf("shard 0 inserts = %d, want 2", got)
	}
	if got := len(subs[1].Insert); got != 2 {
		t.Fatalf("shard 1 inserts = %d, want 2", got)
	}
	if len(subs[0].Delete) != 1 || len(subs[1].Delete) != 1 {
		t.Fatalf("cut delete not delivered to both shards: %d/%d", len(subs[0].Delete), len(subs[1].Delete))
	}
	// Labels broadcast to every shard.
	if len(subs[0].Labels) != 1 || len(subs[1].Labels) != 1 {
		t.Fatalf("labels not broadcast: %d/%d", len(subs[0].Labels), len(subs[1].Labels))
	}
	// Original batch order is preserved within each sub-batch.
	if subs[0].Insert[0].U != 0 || subs[0].Insert[1].U != 2 {
		t.Fatalf("shard 0 insert order: %v", subs[0].Insert)
	}
}

// churner drives the same random mixed workload into an unsharded
// embedder and a set of sharded ones, tracking live edges so deletes
// always name a live edge.
type churner struct {
	rng  *rand.Rand
	n, k int
	live []graph.Edge
}

func (c *churner) batch() dyn.Batch {
	var b dyn.Batch
	// Deletes first (from the live set, removed immediately so one batch
	// never deletes the same edge twice).
	nDel := c.rng.Intn(3)
	for i := 0; i < nDel && len(c.live) > 0; i++ {
		j := c.rng.Intn(len(c.live))
		b.Delete = append(b.Delete, c.live[j])
		c.live[j] = c.live[len(c.live)-1]
		c.live = c.live[:len(c.live)-1]
	}
	nIns := 1 + c.rng.Intn(6)
	for i := 0; i < nIns; i++ {
		e := graph.Edge{
			U: graph.NodeID(c.rng.Intn(c.n)),
			V: graph.NodeID(c.rng.Intn(c.n)),
			W: float32(1 + c.rng.Intn(4)),
		}
		b.Insert = append(b.Insert, e)
		c.live = append(c.live, e)
	}
	if c.rng.Intn(2) == 0 {
		cls := int32(c.rng.Intn(c.k))
		if c.rng.Intn(8) == 0 {
			cls = labels.Unknown
		}
		b.Labels = append(b.Labels, dyn.LabelUpdate{
			V:     graph.NodeID(c.rng.Intn(c.n)),
			Class: cls,
		})
	}
	return b
}

// TestShardedIngestMatchesUnsharded is the sharding-exactness property
// test: for 1, 2, and 4 shards, delivering each batch through Split to
// per-shard embedders (cut edges to both owners, labels broadcast) and
// assembling the owned rows yields the unsharded embedding within 1e-9,
// with identical labels, under mixed insert/delete/relabel churn.
func TestShardedIngestMatchesUnsharded(t *testing.T) {
	const (
		n      = 64
		k      = 4
		rounds = 120
	)
	for _, shards := range []int{1, 2, 4} {
		y := make([]int32, n)
		for v := range y {
			y[v] = int32(v % k)
		}
		ref, err := dyn.New(n, y, dyn.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPartition(n, shards)
		if err != nil {
			t.Fatal(err)
		}
		set, err := NewShards(p, y, dyn.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		c := &churner{rng: rand.New(rand.NewSource(int64(41 + shards))), n: n, k: k}
		for r := 0; r < rounds; r++ {
			b := c.batch()
			if err := ref.Apply(b); err != nil {
				t.Fatalf("shards=%d round %d: unsharded apply: %v", shards, r, err)
			}
			subs, _ := Split(p, b)
			for i, sub := range subs {
				if Ops(sub) == 0 {
					continue
				}
				if err := set[i].D.Apply(sub); err != nil {
					t.Fatalf("shards=%d round %d: shard %d apply: %v", shards, r, i, err)
				}
			}
		}
		want := ref.Snapshot()
		for i, sh := range set {
			snap := sh.D.Snapshot()
			if snap.Z.R != n || snap.Z.C != k {
				t.Fatalf("shard %d snapshot %dx%d", i, snap.Z.R, snap.Z.C)
			}
			lo, hi := p.Range(i)
			for v := int(lo); v < int(hi); v++ {
				if snap.Y[v] != want.Y[v] {
					t.Fatalf("shards=%d: shard %d label[%d] = %d, want %d",
						shards, i, v, snap.Y[v], want.Y[v])
				}
				sr, wr := snap.Z.Row(v), want.Z.Row(v)
				for col := 0; col < k; col++ {
					if math.Abs(sr[col]-wr[col]) > 1e-9 {
						t.Fatalf("shards=%d: row %d col %d: sharded %g vs unsharded %g",
							shards, v, col, sr[col], wr[col])
					}
				}
			}
			// Rows outside the owned window are never published: they
			// must be zero regardless of the cut-edge mass folded there.
			for v := 0; v < n; v++ {
				if v >= int(lo) && v < int(hi) {
					continue
				}
				for col, x := range snap.Z.Row(v) {
					if x != 0 {
						t.Fatalf("shards=%d: shard %d published non-owned row %d col %d = %g",
							shards, i, v, col, x)
					}
				}
			}
		}
	}
}

// TestShardedDeltaRestrictedToOwnedRows checks that a sharded
// embedder's Delta lists only owned rows and owned relabels, so the
// per-shard delta sections a replica consumes never overlap.
func TestShardedDeltaRestrictedToOwnedRows(t *testing.T) {
	const n, k = 32, 2
	y := make([]int32, n)
	for v := range y {
		y[v] = int32(v % k)
	}
	p, err := NewPartition(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewShards(p, y, dyn.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	// A cut edge dirties one row on each side; each shard's delta must
	// list only its own endpoint.
	b := dyn.Batch{Insert: []graph.Edge{{U: 2, V: 20, W: 1}}}
	subs, cut := Split(p, b)
	if cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	for i := range set {
		from := set[i].D.Epoch()
		if err := set[i].D.Apply(subs[i]); err != nil {
			t.Fatal(err)
		}
		dl := set[i].D.Delta(from)
		if dl.Resync {
			t.Fatalf("shard %d: unexpected resync", i)
		}
		lo, hi := p.Range(i)
		if len(dl.Rows) != 1 {
			t.Fatalf("shard %d: delta rows %v, want exactly the owned endpoint", i, dl.Rows)
		}
		if v := dl.Rows[0]; uint32(v) < lo || uint32(v) >= hi {
			t.Fatalf("shard %d: delta row %d outside owned [%d,%d)", i, v, lo, hi)
		}
	}
}
