// A minimal Prometheus text-format reader: enough grammar to scrape
// our own exposition (and any conforming sample lines) back into typed
// samples, so geeload can report the server's own counters at
// end-of-run and tests can assert round-trips instead of string
// matching.

package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// Label returns the sample's value for a label name ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseText reads Prometheus text exposition into samples. Comment and
// blank lines are skipped; any other malformed line is an error with
// its line number. Timestamps (a trailing integer) are accepted and
// dropped.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Sample
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validName(s.Name, false) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		var err error
		if s.Labels, rest, err = parseLabels(rest[1:]); err != nil {
			return s, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want 'value [timestamp]' after %q, got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, err
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	s.Value = v
	return s, nil
}

// parseValue accepts Go float syntax plus the exposition spellings of
// the specials.
func parseValue(f string) (float64, error) {
	switch f {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	v, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", f)
	}
	return v, nil
}

// parseLabels consumes name="value" pairs after an opening brace and
// returns the remainder after the closing brace. Escapes \\, \", \n.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(s[:eq])
		if !validName(name, true) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: unquoted value", name)
		}
		s = s[1:]
		var b strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, s[1])
				}
				s = s[2:]
				continue
			}
			b.WriteByte(c)
			s = s[1:]
		}
		labels[name] = b.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
		}
	}
}

// HistogramFromSamples reassembles one histogram child from scraped
// samples: the _bucket/_sum/_count series of `name` whose labels
// (ignoring le) equal match. Returns nil when no buckets matched.
// Cumulative bucket values are de-accumulated back into per-bucket
// counts, so the result merges and estimates quantiles like a local
// snapshot.
func HistogramFromSamples(samples []Sample, name string, match map[string]string) *HistogramSnapshot {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	snap := &HistogramSnapshot{}
	labelsMatch := func(got map[string]string, ignoreLe bool) bool {
		n := len(match)
		for k, v := range got {
			if ignoreLe && k == "le" {
				continue
			}
			want, ok := match[k]
			if !ok || want != v {
				return false
			}
			n--
		}
		return n == 0
	}
	for _, s := range samples {
		switch s.Name {
		case name + "_bucket":
			if !labelsMatch(s.Labels, true) {
				continue
			}
			le, err := parseValue(s.Label("le"))
			if err != nil {
				continue
			}
			buckets = append(buckets, bucket{le: le, cum: s.Value})
		case name + "_sum":
			if labelsMatch(s.Labels, false) {
				snap.Sum = s.Value
			}
		case name + "_count":
			if labelsMatch(s.Labels, false) {
				snap.Count = int64(s.Value)
			}
		}
	}
	if len(buckets) == 0 {
		return nil
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	prev := 0.0
	for _, b := range buckets {
		n := int64(b.cum - prev)
		prev = b.cum
		if math.IsInf(b.le, 1) { // +Inf bucket: overflow cell, no bound entry
			snap.Counts = append(snap.Counts, n)
			continue
		}
		snap.Bounds = append(snap.Bounds, b.le)
		snap.Counts = append(snap.Counts, n)
	}
	if len(snap.Counts) == len(snap.Bounds) {
		// No +Inf line scraped; synthesize an empty overflow cell.
		snap.Counts = append(snap.Counts, 0)
	}
	return snap
}
