package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats reading briefly, so the
// several heap/GC instruments below cost a single stop-the-world
// sample per scrape (and concurrent scrapes share it) instead of one
// each.
type memSampler struct {
	mu  sync.Mutex
	at  time.Time
	ttl time.Duration
	ms  runtime.MemStats
}

func (s *memSampler) sample() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.at.IsZero() || time.Since(s.at) > s.ttl {
		runtime.ReadMemStats(&s.ms)
		s.at = time.Now()
	}
	return s.ms
}

// RegisterRuntime registers process-health instruments sampled at
// exposition time: goroutine count, heap bytes, and GC cycle/pause
// totals. Idempotent per registry (re-registration returns the
// existing collectors), so layered components may all call it.
func RegisterRuntime(reg *Registry) {
	s := &memSampler{ttl: 100 * time.Millisecond}
	reg.GaugeFunc("gee_go_goroutines",
		"Live goroutines in the serving process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("gee_go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(s.sample().HeapAlloc) })
	reg.GaugeFunc("gee_go_heap_sys_bytes",
		"Bytes of heap memory obtained from the OS (runtime.MemStats.HeapSys).",
		func() float64 { return float64(s.sample().HeapSys) })
	reg.CounterFunc("gee_go_gc_cycles_total",
		"Completed GC cycles since process start.",
		func() float64 { return float64(s.sample().NumGC) })
	reg.CounterFunc("gee_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(s.sample().PauseTotalNs) / 1e9 })
}
