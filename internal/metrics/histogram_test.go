package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// TestObserveBucketPlacement checks the le contract directly: a sample
// lands in the first bucket whose bound is >= the sample, boundary
// values inclusive.
func TestObserveBucketPlacement(t *testing.T) {
	bounds := []float64{1, 10, 100}
	h := NewHistogram(bounds)
	cases := []struct {
		v    float64
		cell int
	}{
		{0.5, 0}, {1, 0}, // on-boundary goes to the le bucket
		{1.0001, 1}, {10, 1},
		{11, 2}, {100, 2},
		{100.5, 3}, {1e9, 3}, // overflow cell
	}
	for _, c := range cases {
		before := h.Snapshot()
		h.Observe(c.v)
		after := h.Snapshot()
		for i := range after.Counts {
			want := before.Counts[i]
			if i == c.cell {
				want++
			}
			if after.Counts[i] != want {
				t.Fatalf("Observe(%g): cell %d went %d -> %d, want %d",
					c.v, i, before.Counts[i], after.Counts[i], want)
			}
		}
	}
	h.Observe(math.NaN())
	if got := h.Count(); got != int64(len(cases)) {
		t.Fatalf("NaN changed the count: %d", got)
	}
}

// TestHistogramPropertyQuantiles is the property test over random
// workloads: for log-spaced buckets and random samples, (a) every
// sample is counted exactly once in the bucket its value selects, and
// (b) the p50/p90/p99 estimates are within one bucket width of the
// exact-sort oracle.
func TestHistogramPropertyQuantiles(t *testing.T) {
	bounds := ExpBuckets(1e-4, 2, 22)
	r := xrand.New(7)
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram(bounds)
		n := 100 + r.Intn(5000)
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform over ~the bucket span, plus occasional
			// overflow and exact-boundary values.
			v := 1e-4 * math.Pow(2, r.Float64()*21)
			switch r.Intn(20) {
			case 0:
				v = bounds[r.Intn(len(bounds))] // exact boundary
			case 1:
				v = bounds[len(bounds)-1] * 4 // overflow bucket
			}
			samples[i] = v
			h.Observe(v)
		}
		s := h.Snapshot()
		if s.Count != int64(n) {
			t.Fatalf("trial %d: count %d, want %d", trial, s.Count, n)
		}
		// (a) bucket placement: recompute the expected cells by brute
		// force.
		want := make([]int64, len(bounds)+1)
		for _, v := range samples {
			want[sort.SearchFloat64s(bounds, v)]++
		}
		for i := range want {
			if s.Counts[i] != want[i] {
				t.Fatalf("trial %d: cell %d has %d, want %d", trial, i, s.Counts[i], want[i])
			}
		}
		// (b) quantiles vs the sort oracle, within one bucket width.
		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			oracle := sorted[int(q*float64(n-1))]
			est := s.Quantile(q)
			i := sort.SearchFloat64s(bounds, oracle)
			if i == len(bounds) {
				// Oracle in the unbounded overflow bucket: the estimate
				// clamps to the last finite bound by contract.
				if est != bounds[len(bounds)-1] {
					t.Fatalf("trial %d: q%.2f overflow estimate %g, want clamp to %g",
						trial, q, est, bounds[len(bounds)-1])
				}
				continue
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			width := bounds[i] - lo
			if math.Abs(est-oracle) > width {
				t.Fatalf("trial %d: q%.2f estimate %g vs oracle %g: off by more than the bucket width %g",
					trial, q, est, oracle, width)
			}
		}
	}
}

// TestHistogramConcurrentObserve drives parallel writers (under -race
// in CI) and checks no observation is lost: cells, count, and sum all
// reconcile exactly.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	const workers = 8
	const perWorker = 20_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(uint64(100 + id))
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(r.Intn(2048)))
				if i%64 == 0 {
					_ = h.Snapshot() // concurrent scrapes must not disturb writers
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("lost observations: count %d, want %d", s.Count, workers*perWorker)
	}
	var cells int64
	for _, c := range s.Counts {
		cells += c
	}
	if cells != workers*perWorker {
		t.Fatalf("cells sum to %d, want %d", cells, workers*perWorker)
	}
	if s.Sum < 0 || s.Sum > float64(workers*perWorker)*2048 {
		t.Fatalf("implausible sum %g", s.Sum)
	}
}

// TestSnapshotMerge merges two disjoint snapshots and checks the
// combined quantiles match a single histogram fed both streams.
func TestSnapshotMerge(t *testing.T) {
	bounds := ExpBuckets(1, 2, 12)
	a, b, both := NewHistogram(bounds), NewHistogram(bounds), NewHistogram(bounds)
	r := xrand.New(11)
	for i := 0; i < 4000; i++ {
		v := float64(r.Intn(5000))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	want := both.Snapshot()
	if sa.Count != want.Count || sa.Sum != want.Sum {
		t.Fatalf("merge: count/sum %d/%g, want %d/%g", sa.Count, sa.Sum, want.Count, want.Sum)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, w := sa.Quantile(q), want.Quantile(q); got != w {
			t.Fatalf("merged q%.2f = %g, combined histogram says %g", q, got, w)
		}
	}
	wrong := NewHistogram(ExpBuckets(1, 2, 5)).Snapshot()
	if err := sa.Merge(wrong); err == nil {
		t.Fatal("merging mismatched bounds did not error")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	s := NewHistogram(ExpBuckets(1, 2, 4)).Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(100) // overflow only
	if got := h.Snapshot().Quantile(0.5); got != 4 {
		t.Fatalf("overflow-only quantile = %g, want the last finite bound 4", got)
	}
}
