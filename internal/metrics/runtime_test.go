package metrics

import (
	"strings"
	"testing"
)

// TestRegisterRuntime: the process-health instruments expose live,
// plausible values and registration is idempotent.
func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	RegisterRuntime(reg) // second call must not panic or duplicate

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"gee_go_goroutines",
		"gee_go_heap_alloc_bytes",
		"gee_go_heap_sys_bytes",
		"gee_go_gc_cycles_total",
		"gee_go_gc_pause_seconds_total",
	} {
		if n := strings.Count(out, "\n"+name+" "); n != 1 {
			t.Errorf("exposition has %d sample lines for %s, want 1:\n%s", n, name, out)
		}
	}
	// A live process always has at least this test's goroutine, and a
	// running heap is never zero bytes.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "gee_go_goroutines ") || strings.HasPrefix(line, "gee_go_heap_alloc_bytes ") {
			f := strings.Fields(line)
			if len(f) != 2 || f[1] == "0" {
				t.Errorf("implausible sample: %q", line)
			}
		}
	}
}
