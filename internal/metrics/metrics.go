// Package metrics is the serving stack's measurement surface: a
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// latency histograms, exposed in the Prometheus text format. It exists
// so every layer — HTTP handlers, the ingest coalescer, the dynamic
// embedder's publish path, the IVF index cache, replica followers —
// records what it does through one allocation-conscious vocabulary,
// and so load tools and CI can scrape the server's own numbers instead
// of re-deriving them client-side.
//
// Hot-path cost is the design constraint: an instrument handle is
// resolved once at construction (one map lookup under a lock), and
// every subsequent Observe/Add/Inc is a handful of atomic int64
// operations on pre-allocated cells — no maps, no locks, no
// allocations. Exposition walks the registry under a read lock and
// loads each cell once; counters are monotonic, so a scrape racing
// writers sees a slightly-behind but never-inconsistent view.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to an instrument. Instruments
// with the same metric name but different label values are children of
// one family and share its HELP/TYPE header.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for Label{Name: n, Value: v}.
func L(n, v string) Label { return Label{Name: n, Value: v} }

// kind is the exposition TYPE of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// collector is anything a family child can expose.
type collector interface {
	// collect writes the child's sample lines. name is the family
	// name, labels the child's preformatted {…} block (possibly "").
	collect(w io.Writer, name, labels string)
}

// child is one labeled instrument of a family.
type child struct {
	key    string // canonical sorted label encoding, "" for unlabeled
	labels string // preformatted {a="b",c="d"} block, "" for unlabeled
	c      collector
}

// family groups all children sharing one metric name.
type family struct {
	name string
	help string
	kind kind
	// histogram families pin their bucket bounds at first registration
	// so every child is mergeable with every other.
	bounds   []float64
	children []child // registration order; exposition is deterministic
	byKey    map[string]int
}

// Registry holds metric families and renders them as Prometheus text.
// All methods are safe for concurrent use; instrument registration is
// idempotent (the same name + labels returns the same instrument).
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*family
	names []string // sorted family names for deterministic exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// validName is the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*; label names drop the colon.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && !label:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// text-format grammar.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelBlock renders labels (sorted by name) as key (canonical identity)
// and as the exposition block. extra appends without re-sorting (used
// for the histogram le label, which sorts last anyway by construction).
func labelBlock(labels []Label) (key, block string, err error) {
	if len(labels) == 0 {
		return "", "", nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Name, true) {
			return "", "", fmt.Errorf("metrics: bad label name %q", l.Name)
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String(), "{" + b.String() + "}", nil
}

// register resolves (or creates) the family and child, enforcing kind
// agreement. It returns the existing collector when the same name +
// labels was registered before — callers then reuse the same cells.
func (r *Registry) register(name, help string, k kind, bounds []float64, labels []Label, mk func() collector) (collector, error) {
	if !validName(name, false) {
		return nil, fmt.Errorf("metrics: bad metric name %q", name)
	}
	key, block, err := labelBlock(labels)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, bounds: bounds, byKey: make(map[string]int)}
		r.fams[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	}
	if f.kind != k {
		return nil, fmt.Errorf("metrics: %s re-registered as %s (was %s)", name, k, f.kind)
	}
	if k == kindHistogram && !sameBounds(f.bounds, bounds) {
		return nil, fmt.Errorf("metrics: histogram %s re-registered with different buckets", name)
	}
	if i, ok := f.byKey[key]; ok {
		return f.children[i].c, nil
	}
	c := mk()
	f.byKey[key] = len(f.children)
	f.children = append(f.children, child{key: key, labels: block, c: c})
	return c, nil
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustRegister panics on registration errors: instrument names and
// label sets are compile-time constants, so a failure is a programming
// error the first test run should surface, not a runtime condition.
func mustRegister(c collector, err error) collector {
	if err != nil {
		panic(err)
	}
	return c
}

// Counter is a monotonically increasing atomic int64.
type Counter struct {
	v atomic.Int64
}

// Counter registers (or finds) a counter. Panics on a malformed name or
// a kind clash — registration arguments are programmer constants.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return mustRegister(r.register(name, help, kindCounter, nil, labels,
		func() collector { return &Counter{} })).(*Counter)
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) collect(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Gauge is a settable atomic int64 (queue depths, occupancies, epochs).
type Gauge struct {
	v atomic.Int64
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return mustRegister(r.register(name, help, kindGauge, nil, labels,
		func() collector { return &Gauge{} })).(*Gauge)
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) collect(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, g.v.Load())
}

// gaugeFunc samples a callback at exposition time — for values another
// component already maintains (channel length, epoch difference). The
// callback must be safe to call from any goroutine and must not block.
type gaugeFunc struct {
	fn func() float64
}

// GaugeFunc registers a sampled gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	mustRegister(r.register(name, help, kindGauge, nil, labels,
		func() collector { return gaugeFunc{fn: fn} }))
}

func (g gaugeFunc) collect(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.fn()))
}

// counterFunc is gaugeFunc with counter TYPE semantics — for monotonic
// counts another component already maintains atomically.
type counterFunc struct {
	fn func() float64
}

// CounterFunc registers a sampled counter. The callback must be
// monotonically non-decreasing, safe to call from any goroutine, and
// must not block.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	mustRegister(r.register(name, help, kindCounter, nil, labels,
		func() collector { return counterFunc{fn: fn} }))
}

func (c counterFunc) collect(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.fn()))
}

// Histogram registers (or finds) a fixed-bucket histogram. bounds are
// ascending bucket upper limits (le semantics); an implicit +Inf bucket
// is appended. Every child of one family must use the same bounds so
// scraped children merge.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %s bounds not ascending at %d", name, i))
		}
	}
	return mustRegister(r.register(name, help, kindHistogram, bounds, labels,
		func() collector { return newHistogram(bounds) })).(*Histogram)
}

// formatFloat renders a float in the shortest round-trip form the text
// format accepts.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with HELP and
// TYPE headers, children in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names {
		f := r.fams[name]
		if len(f.children) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " ")); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.children {
			c.c.collect(w, f.name, c.labels)
		}
	}
	return nil
}
