// The latency histogram: fixed log-spaced buckets over lock-free
// atomic.Int64 cells. An Observe is a binary search over the (small,
// immutable) bound slice plus three atomic adds — no locks, no
// allocations — so it is cheap enough to sit on every request path.
// Quantiles are estimated from the bucket counts by linear
// interpolation inside the crossing bucket, which bounds the error by
// one bucket width: with log-spaced bounds that is a constant
// *relative* error, the right trade for latencies spanning five
// decades.

package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets. Safe for fully
// concurrent Observe; Snapshot may run concurrently with writers and
// sees a monotonic (possibly slightly behind) view.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf after
	cells  []atomic.Int64
	count  atomic.Int64
	sum    atomicFloat
}

// atomicFloat accumulates a float64 with a CAS loop on its bits. Sums
// are only read at scrape/report time, so the uncontended-add cost is
// all that matters.
type atomicFloat struct {
	bits atomic.Uint64
}

//gee:noalloc
func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		cells:  make([]atomic.Int64, len(bounds)+1),
	}
}

// NewHistogram builds an unregistered histogram with the given
// ascending bucket bounds — for process-local measurement (load
// generators) that never gets scraped.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	return newHistogram(bounds)
}

// Observe records one sample. NaN is dropped (a poisoned sample must
// not un-order the cumulative buckets).
//
//gee:noalloc
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bound >= v — exactly the le (less-or-equal) bucket contract.
	i := sort.SearchFloat64s(h.bounds, v)
	h.cells[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveSince records the seconds elapsed since t0.
//
//gee:noalloc
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the current state for merging and quantile
// estimation.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	s := &HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.cells)),
	}
	// Cells first, count/sum after: a sample landing mid-copy may be
	// missed entirely but never double-counted, and Count is re-derived
	// from the cells so the snapshot is internally consistent.
	for i := range h.cells {
		n := h.cells[i].Load()
		s.Counts[i] = n
		s.Count += n
	}
	s.Sum = h.sum.load()
	return s
}

// HistogramSnapshot is one histogram's state at a point in time.
// Mergeable across histograms with identical bounds (e.g. per-worker
// or scraped per-endpoint children).
type HistogramSnapshot struct {
	Bounds []float64 // ascending upper bounds; Counts has one extra +Inf cell
	Counts []int64   // per-bucket (non-cumulative) counts
	Count  int64
	Sum    float64
}

// Merge adds o into s. The bounds must match.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) error {
	if !sameBounds(s.Bounds, o.Bounds) {
		return fmt.Errorf("metrics: merging histograms with different bounds")
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	return nil
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket where the cumulative count crosses
// the target rank. The estimate lands in the same bucket as the exact
// order statistic, so it is off by at most one bucket width. Returns 0
// on an empty snapshot; samples in the +Inf overflow bucket clamp to
// the last finite bound.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Target the (rank+1)-th smallest sample, matching the
	// sort-an-array convention xs[int(q*(len-1))].
	rank := int64(q*float64(s.Count-1)) + 1
	var cum int64
	for i, c := range s.Counts {
		if cum+c < rank {
			cum += c
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i == len(s.Bounds) {
			// Overflow bucket: no finite upper bound to interpolate
			// toward; the last finite bound is the best honest answer.
			return lo
		}
		hi := s.Bounds[i]
		return lo + (hi-lo)*float64(rank-cum)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns Sum/Count, or 0 when empty.
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// collect renders the histogram in exposition form: cumulative
// _bucket{le="..."} lines, then _sum and _count. The le label appends
// after any preset labels.
func (h *Histogram) collect(w io.Writer, name, labels string) {
	// Splice le into the label block: {a="b"} becomes {a="b",le="…"}.
	prefix := name + `_bucket{`
	if labels != "" {
		prefix = name + "_bucket" + labels[:len(labels)-1] + ","
	}
	var cum int64
	for i := range h.cells {
		cum += h.cells[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%sle=%q} %d\n", prefix, le, cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.sum.load()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
}

// ExpBuckets returns n log-spaced bucket bounds starting at start,
// each factor times the previous — the shape latency and size
// distributions want (constant relative resolution).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefLatencyBuckets spans 50µs to ~26s in ×2 steps — wide enough for
// an in-memory row read and a cold O(nK) snapshot stream on one axis.
var DefLatencyBuckets = ExpBuckets(50e-6, 2, 20)

// DefSizeBuckets spans 64 B to ~1 GiB in ×4 steps for response and
// payload sizes.
var DefSizeBuckets = ExpBuckets(64, 4, 13)

// DefCountBuckets spans 1 to ~16M in ×4 steps for batch sizes and row
// counts.
var DefCountBuckets = ExpBuckets(1, 4, 13)
