package metrics

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

// expositionLine is the text-format grammar the smoke script also
// asserts: HELP/TYPE comments or name{labels} value lines.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[+-]?Inf|NaN))$`)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("gee_requests_total", "requests served", L("route", "/v1/edges"), L("code", "200"))
	c.Add(41)
	c.Inc()
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("gee_queue_depth", "queued requests")
	g.Set(7)
	r.GaugeFunc("gee_sampled", "sampled gauge", func() float64 { return 2.5 })
	h := r.Histogram("gee_latency_seconds", "request latency", []float64{0.001, 0.01, 0.1},
		L("route", "/v1/edges"))
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("line does not match the exposition grammar: %q", line)
		}
	}
	for _, want := range []string{
		`gee_requests_total{code="200",route="/v1/edges"} 42`,
		`gee_queue_depth 7`,
		`gee_sampled 2.5`,
		`gee_latency_seconds_bucket{route="/v1/edges",le="0.001"} 1`,
		`gee_latency_seconds_bucket{route="/v1/edges",le="+Inf"} 3`,
		`gee_latency_seconds_count{route="/v1/edges"} 3`,
		`# TYPE gee_latency_seconds histogram`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestRegistrationIdempotent checks that re-registering the same name +
// labels returns the same cells, while clashes are rejected loudly.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same name+labels returned different counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("idempotent registration did not share cells")
	}
	if c := r.Counter("x_total", "", L("route", "/a")); c == a {
		t.Fatal("different labels returned the same counter")
	}
	mustPanic(t, "kind clash", func() { r.Gauge("x_total", "") })
	mustPanic(t, "bad name", func() { r.Counter("1bad", "") })
	mustPanic(t, "bad label", func() { r.Counter("ok_total", "", L("1bad", "v")) })
	r.Histogram("h_seconds", "", []float64{1, 2})
	mustPanic(t, "bucket clash", func() { r.Histogram("h_seconds", "", []float64{1, 2, 3}) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

// TestParseRoundTrip writes a registry out and reads it back: every
// sample must survive with its labels and value.
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "with a\nnewline help", L("path", `x"y\z`)).Add(3)
	r.Gauge("b", "").Set(-12)
	h := r.Histogram("lat_seconds", "", ExpBuckets(0.001, 10, 4), L("route", "/v1/delta"))
	for _, v := range []float64{0.0005, 0.002, 0.02, 0.2, 2, 20} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("our own exposition did not parse: %v\n%s", err, b.String())
	}
	byName := map[string]Sample{}
	for _, s := range samples {
		byName[s.Name+s.Label("le")] = s
	}
	if s := byName["a_total"]; s.Value != 3 || s.Label("path") != `x"y\z` {
		t.Fatalf("a_total round trip: %+v", s)
	}
	if s := byName["b"]; s.Value != -12 {
		t.Fatalf("b round trip: %+v", s)
	}
	if s := byName["lat_seconds_bucket+Inf"]; !math.IsInf(mustValue(t, s.Label("le")), 1) || s.Value != 6 {
		t.Fatalf("+Inf bucket round trip: %+v", s)
	}

	// Histogram reassembly: the scraped child must merge and estimate
	// like the local snapshot.
	snap := HistogramFromSamples(samples, "lat_seconds", map[string]string{"route": "/v1/delta"})
	if snap == nil {
		t.Fatal("HistogramFromSamples found nothing")
	}
	local := h.Snapshot()
	if snap.Count != local.Count || snap.Sum != local.Sum {
		t.Fatalf("scraped count/sum %d/%g, local %d/%g", snap.Count, snap.Sum, local.Count, local.Sum)
	}
	for _, q := range []float64{0.5, 0.99} {
		if got, want := snap.Quantile(q), local.Quantile(q); got != want {
			t.Fatalf("scraped q%.2f = %g, local %g", q, got, want)
		}
	}
	if snap := HistogramFromSamples(samples, "lat_seconds", map[string]string{"route": "/nope"}); snap != nil {
		t.Fatal("HistogramFromSamples matched the wrong labels")
	}
}

func mustValue(t *testing.T, s string) float64 {
	t.Helper()
	v, err := parseValue(s)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1bad 3",
		"name{unterminated 3",
		`name{a="b"} notanumber`,
		`name{a="b} 3`,
		"name",
	} {
		if _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Errorf("parsed garbage %q", bad)
		}
	}
	samples, err := ParseText(strings.NewReader("# a comment\n\nok_total 3 1700000000000\n"))
	if err != nil || len(samples) != 1 || samples[0].Value != 3 {
		t.Fatalf("timestamped sample: %v %+v", err, samples)
	}
}
