// Package dyn is the dynamic embedding service of the GEE reproduction:
// a DynamicEmbedder maintains a One-Hot Graph Encoder Embedding under
// edge insertions, edge deletions, and incremental label changes, while
// serving concurrent readers from epoch-versioned snapshots.
//
// The paper's one-pass formulation makes this possible: Z is a sum of
// independent per-edge contributions, so an inserted edge folds in with
// the same two half-updates as the batch algorithm and a deleted edge
// folds the same contribution with negated sign. The subtlety is the
// 1/n_k projection coefficients — a label change alters class counts,
// which rescales every contribution of the two affected classes. The
// embedder therefore accumulates the *unnormalized* per-class sums U
// (coefficient 1 per labeled endpoint): column c of U only receives
// mass keyed by class-c endpoints, so the exact embedding is recovered
// at publish time as Z(·,c) = U(·,c)/n_c, and a label change reduces to
// sliding the vertex's raw incident-edge mass between two columns
// (O(degree), via a maintained adjacency) plus a count update. Class
// counts entering only at publish is what keeps the coefficients exact
// under any interleaving of operations.
//
// Writers are serialized by an internal lock and route edge folds
// through internal/exec: atomic adds for small batches, the
// contention-free sharded backend for large ones, bucketing each batch
// in O(batch) against a shard layout cached across batches. Readers
// never take the lock: Query and Snapshot read an atomically published
// immutable version (copy-on-epoch over mat.Dense), so queries stay
// consistent while ingest continues.
package dyn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/parallel"
)

// Options configures a DynamicEmbedder. The Laplacian and directed
// variants are not supported dynamically (degrees change with every
// batch; the 2K layout is a static transform).
type Options struct {
	// K is the number of classes (embedding width). Zero infers
	// 1 + max(y) from the initial labels.
	K int
	// Workers bounds parallelism for folds and publishes; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// ShardedThreshold is the batch size (in folded edges) at which
	// ingest switches from atomic adds to the contention-free sharded
	// path (with more than one worker; a single worker always folds
	// serially). Zero selects a default; negative disables sharding.
	ShardedThreshold int
	// ManualPublish suppresses the automatic publish after every Apply;
	// the caller batches visibility with explicit Publish calls. Ingest
	// throughput then no longer pays the O(nK) normalization per batch.
	ManualPublish bool
	// PublishEvery > 0 publishes automatically once at least that many
	// operations (inserts + deletes + applied label moves) have been
	// folded since the last publish, amortizing the O(nK) normalization
	// over many small batches while bounding staleness by op count. It
	// overrides the per-Apply publish and ManualPublish; an explicit
	// Publish still works at any time (and resets the op counter).
	PublishEvery int
	// DeltaHistory bounds the ring of per-epoch deltas kept for
	// Delta(fromEpoch): the embedder remembers which rows each of the
	// last DeltaHistory publishes changed, so a follower at most that
	// many epochs behind can catch up with changed rows instead of a
	// full snapshot. Zero selects 64; negative disables the ring
	// entirely (Delta always answers "resync").
	DeltaHistory int
	// OwnedLo/OwnedHi restrict the published window to the vertex range
	// [OwnedLo, OwnedHi): folds still span the full vertex range (an
	// edge's contribution lands in both endpoint rows regardless of
	// ownership), but publish-time normalization, dirty-row tracking,
	// and the delta ring cover only the owned rows — rows outside the
	// window stay zero in every snapshot. Both zero means the full
	// range. This is the sharded serving tier's partition hook
	// (internal/shard); a standalone embedder leaves it unset.
	OwnedLo, OwnedHi int
}

// defaultShardedThreshold balances the O(batch) bucketing pass against
// the atomic contention it avoids; below a few thousand edges the
// bucketing costs more than the atomics.
const defaultShardedThreshold = 4096

// defaultDeltaHistory is the number of per-epoch deltas retained for
// Delta when Options.DeltaHistory is zero: deep enough that a follower
// polling every few publishes never falls off the ring, shallow enough
// that the retained row lists stay a footnote next to U itself.
const defaultDeltaHistory = 64

// LabelUpdate reassigns vertex V to Class (labels.Unknown removes the
// label).
type LabelUpdate struct {
	V     graph.NodeID
	Class int32
}

// Batch is one atomic unit of ingest, applied in field order: deletions
// first, then insertions, then label updates. A reader never observes a
// partially applied batch.
type Batch struct {
	Insert []graph.Edge
	Delete []graph.Edge
	Labels []LabelUpdate
}

// Snapshot is one published, immutable version of the embedding.
// Readers may hold it indefinitely; it is never mutated after publish.
type Snapshot struct {
	// Epoch is the version counter (0 = the empty initial version).
	Epoch uint64
	// Instance identifies the embedder lifetime that produced this
	// snapshot: epochs are only comparable within one instance, so a
	// follower that sees the instance change must resync rather than
	// apply deltas across the restart.
	Instance uint64
	// Z is the normalized n×K embedding. Read-only by contract.
	Z *mat.Dense
	// Y is the label vector at publish time. Read-only by contract.
	Y []int32
	// Edges is the number of live edges folded into Z.
	Edges int64
}

// Stats counts what the embedder has done so far.
type Stats struct {
	Epoch        uint64
	LiveEdges    int64
	Inserts      int64
	Deletes      int64
	LabelMoves   int64 // applied label updates (no-op reassignments excluded)
	Batches      int64
	AtomicFolds  int64 // batches folded with atomic adds
	ShardedFolds int64 // batches folded through the sharded edge plan
	SerialFolds  int64 // batches folded serially (tiny or single-worker)
	Publishes    int64 // published versions (excluding the epoch-0 bootstrap)
}

// halfEdge is one incident arc endpoint: the *other* vertex's row
// receives this vertex's class contribution, so a label change walks
// exactly this list.
type halfEdge struct {
	v graph.NodeID
	w float32
}

// DynamicEmbedder maintains a GEE embedding under churn. All writer
// methods (Apply and its convenience wrappers, Publish) are safe for
// concurrent use with each other and with readers; Query and Snapshot
// never block on writers.
type DynamicEmbedder struct {
	n, k     int
	workers  int
	thresh   int
	manual   bool
	pubEvery int
	instance uint64
	// Owned row window [ownLo, ownHi): publish/delta restriction (see
	// Options.OwnedLo). Full range for a standalone embedder.
	ownLo, ownHi int

	mu       sync.Mutex // serializes writers over the mutable state below
	y        []int32
	counts   []int64
	adj      [][]halfEdge // incident half-edges of each vertex
	u        *mat.Dense   // unnormalized per-class sums
	kern     exec.Kernel[float64]
	plan     *exec.EdgePlan // lazily built sharded layout, reused per batch
	edges    int64
	scratch  []graph.Edge // negated-delete + insert fold buffer
	sincePub int64        // ops folded since the last publish (PublishEvery)
	stats    Stats

	// Delta tracking (all under mu; inert when deltaHist == 0).
	deltaHist int
	dirtyMark []uint64       // dirtyMark[v] == dirtyGen ⇔ row v already recorded
	dirtyGen  uint64         // bumped per publish so marks clear in O(1)
	dirtyRows []graph.NodeID // rows whose Z changed since the last publish
	dirtyFull bool           // too many dirty rows: this epoch will be full
	relabeled []graph.NodeID // vertices whose label changed since the last publish
	pubCounts []int64        // class counts at the last publish
	ring      []epochDelta   // last deltaHist publishes, oldest first

	// foldHook, when non-nil, replaces the exec fold — tests inject
	// failures to exercise Apply's nothing-is-applied contract.
	foldHook func(del, ins []graph.Edge) error

	// publishHook, when non-nil, observes every published epoch and
	// how long the publish took. The serving layer's coalescer uses it
	// to split publish time out of the fold span when auto-publish
	// runs inside Apply. Called under mu; keep it cheap.
	publishHook func(epoch uint64, dur time.Duration)

	// Observability instruments (nil until Instrument; all guarded by
	// mu like the state they measure).
	mPublish    *metrics.Histogram // publish (normalize + version) latency
	mDirtyRows  *metrics.Histogram // dirty rows per published epoch
	mFullEpochs *metrics.Counter   // epochs promoted to full (resync-only)
	mRing       *metrics.Gauge     // delta-ring occupancy in epochs

	cur atomic.Pointer[Snapshot]
}

// Instrument registers the embedder's publish-path instruments on reg:
// publish latency, dirty rows per epoch, full-epoch promotions, and
// delta-ring occupancy. Call at most once per registry and label set
// (the serving layer does this when it adopts the embedder; a sharded
// server passes a distinct shard label per embedder so N shards'
// series coexist on one registry); publishes before Instrument simply
// go unmeasured.
func (d *DynamicEmbedder) Instrument(reg *metrics.Registry, labels ...metrics.Label) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.mPublish = reg.Histogram("gee_dyn_publish_seconds",
		"Latency of publishing one epoch (normalize U and version the snapshot).",
		metrics.DefLatencyBuckets, labels...)
	d.mDirtyRows = reg.Histogram("gee_dyn_publish_dirty_rows",
		"Rows whose embedding changed in one published epoch.",
		metrics.DefCountBuckets, labels...)
	d.mFullEpochs = reg.Counter("gee_dyn_full_epochs_total",
		"Published epochs promoted to full (not row-reconstructible; followers must resync across them).",
		labels...)
	d.mRing = reg.Gauge("gee_dyn_delta_ring_epochs",
		"Per-epoch deltas currently retained for GET /v1/delta.",
		labels...)
	d.mRing.Set(int64(len(d.ring)))
	reg.GaugeFunc("gee_dyn_epoch",
		"Currently published epoch.",
		func() float64 { return float64(d.Epoch()) },
		labels...)
}

// New prepares an embedder for n vertices with the given initial labels
// (labels.Unknown for unlabeled vertices) and publishes the empty epoch-0
// snapshot.
func New(n int, y []int32, opts Options) (*DynamicEmbedder, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dyn: %d vertices", n)
	}
	if len(y) != n {
		return nil, fmt.Errorf("dyn: %d labels for %d vertices", len(y), n)
	}
	k := opts.K
	if k == 0 {
		for _, v := range y {
			if int(v)+1 > k {
				k = int(v) + 1
			}
		}
	}
	if k <= 0 {
		return nil, fmt.Errorf("dyn: no labeled vertices and K unset")
	}
	if err := labels.Validate(y, k); err != nil {
		return nil, err
	}
	workers := parallel.Workers(opts.Workers)
	thresh := opts.ShardedThreshold
	if thresh == 0 {
		thresh = defaultShardedThreshold
	}
	hist := opts.DeltaHistory
	switch {
	case hist == 0:
		hist = defaultDeltaHistory
	case hist < 0:
		hist = 0
	}
	ownLo, ownHi := opts.OwnedLo, opts.OwnedHi
	if ownLo == 0 && ownHi == 0 {
		ownHi = n
	}
	if ownLo < 0 || ownLo >= ownHi || ownHi > n {
		return nil, fmt.Errorf("dyn: owned range [%d,%d) outside [0,%d)", ownLo, ownHi, n)
	}
	yc := append([]int32(nil), y...)
	d := &DynamicEmbedder{
		n: n, k: k, workers: workers,
		instance:  newInstanceID(),
		thresh:    thresh,
		manual:    opts.ManualPublish,
		pubEvery:  opts.PublishEvery,
		deltaHist: hist,
		ownLo:     ownLo,
		ownHi:     ownHi,
		y:         yc,
		counts:    parallel.Histogram(workers, n, k, func(i int) int { return int(yc[i]) }),
		adj:       make([][]halfEdge, n),
		u:         mat.NewDense(n, k),
		kern: exec.Kernel[float64]{
			Width:  k,
			SrcCol: yc,
			DstCol: yc,
			Coeff:  ones(n),
		},
	}
	if hist > 0 {
		d.dirtyMark = make([]uint64, n)
		d.dirtyGen = 1
		d.pubCounts = make([]int64, k)
	}
	d.publishLocked()
	return d, nil
}

func ones(n int) []float64 {
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	return c
}

// instanceCounter distinguishes embedders created within the same
// nanosecond of one process.
var instanceCounter atomic.Uint64

// newInstanceID tags one embedder lifetime. It only needs to differ
// across restarts and coexisting embedders — wall-clock nanoseconds
// salted with a process-local counter — so a follower never mistakes a
// fresh history's epochs for its own.
func newInstanceID() uint64 {
	return uint64(time.Now().UnixNano()) ^ (instanceCounter.Add(1) << 48)
}

// Instance returns the embedder's lifetime identity (see
// Snapshot.Instance).
func (d *DynamicEmbedder) Instance() uint64 { return d.instance }

// Owned returns the published row window [lo, hi) (see Options.OwnedLo);
// the full range for a standalone embedder.
func (d *DynamicEmbedder) Owned() (lo, hi int) { return d.ownLo, d.ownHi }

// owned reports whether vertex v's row is published by this embedder.
func (d *DynamicEmbedder) owned(v graph.NodeID) bool {
	return int(v) >= d.ownLo && int(v) < d.ownHi
}

// N returns the vertex count.
func (d *DynamicEmbedder) N() int { return d.n }

// K returns the embedding width.
func (d *DynamicEmbedder) K() int { return d.k }

// Epoch returns the currently published version.
func (d *DynamicEmbedder) Epoch() uint64 { return d.cur.Load().Epoch }

// Stats returns a copy of the operation counters.
func (d *DynamicEmbedder) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.Epoch = d.cur.Load().Epoch
	st.LiveEdges = d.edges
	return st
}

// PendingOps returns the number of operations applied since the last
// publish: zero means the published snapshot reflects every completed
// Apply. (Another writer may race new applies against this read; a
// single-writer caller — like the serving layer's ingest coalescer —
// gets an exact answer.)
func (d *DynamicEmbedder) PendingOps() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sincePub
}

// Snapshot returns the currently published version. The returned value
// is immutable and consistent: every batch is either fully reflected or
// not at all.
func (d *DynamicEmbedder) Snapshot() *Snapshot { return d.cur.Load() }

// Query returns a copy of vertex v's embedding row in the currently
// published version, or nil when v is out of range.
func (d *DynamicEmbedder) Query(v graph.NodeID) []float64 {
	s := d.cur.Load()
	if int(v) >= s.Z.R {
		return nil
	}
	out := make([]float64, s.Z.C)
	copy(out, s.Z.Row(int(v)))
	return out
}

// AddEdges inserts a batch of edges.
func (d *DynamicEmbedder) AddEdges(batch []graph.Edge) error {
	return d.Apply(Batch{Insert: batch})
}

// DeleteEdges removes a batch of previously inserted edges. Each edge
// must match a live edge exactly (same orientation and weight).
func (d *DynamicEmbedder) DeleteEdges(batch []graph.Edge) error {
	return d.Apply(Batch{Delete: batch})
}

// UpdateLabels applies a batch of label reassignments.
func (d *DynamicEmbedder) UpdateLabels(updates []LabelUpdate) error {
	return d.Apply(Batch{Labels: updates})
}

// Apply folds one batch into the embedding: deletions, then insertions,
// then label updates. On error nothing is applied. Unless the embedder
// is in manual-publish mode, the new version is published before Apply
// returns.
func (d *DynamicEmbedder) Apply(b Batch) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.validate(&b); err != nil {
		return err
	}
	// Deletions detach from the adjacency first — this is also the
	// existence check — so a missing edge aborts before any fold.
	if err := d.detachDeletes(b.Delete); err != nil {
		return err
	}
	// Fold deletions (negated) and insertions in one pass under the
	// current labels; label updates below move any of this mass that
	// their vertex keys.
	if err := d.fold(b.Delete, b.Insert); err != nil {
		// The deletions were already detached above; without putting
		// them back, a failed fold would leave the adjacency missing
		// edges whose mass is still in U — "on error nothing is
		// applied" demands the reattach.
		d.reattach(b.Delete)
		return err
	}
	for _, e := range b.Insert {
		d.adj[e.U] = append(d.adj[e.U], halfEdge{v: e.V, w: e.W})
		d.adj[e.V] = append(d.adj[e.V], halfEdge{v: e.U, w: e.W})
	}
	if d.deltaHist > 0 {
		for _, e := range b.Delete {
			d.markDirty(e.U)
			d.markDirty(e.V)
		}
		for _, e := range b.Insert {
			d.markDirty(e.U)
			d.markDirty(e.V)
		}
	}
	moved := -d.stats.LabelMoves
	for _, lu := range b.Labels {
		d.relabel(lu.V, lu.Class)
	}
	moved += d.stats.LabelMoves
	d.edges += int64(len(b.Insert)) - int64(len(b.Delete))
	d.stats.Inserts += int64(len(b.Insert))
	d.stats.Deletes += int64(len(b.Delete))
	d.stats.Batches++
	d.sincePub += int64(len(b.Insert)) + int64(len(b.Delete)) + moved
	switch {
	case d.pubEvery > 0:
		if d.sincePub >= int64(d.pubEvery) {
			d.publishLocked()
		}
	case !d.manual:
		d.publishLocked()
	}
	return nil
}

// Publish makes all applied batches visible as a new version. Only
// needed in manual-publish mode; otherwise every Apply publishes.
func (d *DynamicEmbedder) Publish() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.publishLocked()
}

// validate checks every operation of the batch before any mutation.
func (d *DynamicEmbedder) validate(b *Batch) error {
	if i := graph.FirstInvalidEdge(d.workers, d.n, b.Insert); i >= 0 {
		e := b.Insert[i]
		return fmt.Errorf("dyn: insert %d (%d->%d) out of range [0,%d)", i, e.U, e.V, d.n)
	}
	if i := graph.FirstInvalidEdge(d.workers, d.n, b.Delete); i >= 0 {
		e := b.Delete[i]
		return fmt.Errorf("dyn: delete %d (%d->%d) out of range [0,%d)", i, e.U, e.V, d.n)
	}
	for i, lu := range b.Labels {
		if int(lu.V) >= d.n {
			return fmt.Errorf("dyn: label update %d: vertex %d out of range [0,%d)", i, lu.V, d.n)
		}
		if lu.Class < labels.Unknown || int(lu.Class) >= d.k {
			return fmt.Errorf("dyn: label update %d: class %d outside [-1,%d)", i, lu.Class, d.k)
		}
	}
	return nil
}

// detachDeletes removes each deleted edge from the adjacency, rolling
// back on a miss so a failed batch leaves no trace.
func (d *DynamicEmbedder) detachDeletes(del []graph.Edge) error {
	for i, e := range del {
		if !d.removeHalf(e.U, e.V, e.W) {
			d.reattach(del[:i])
			return fmt.Errorf("dyn: delete %d: edge (%d->%d, w=%g) not live", i, e.U, e.V, e.W)
		}
		if !d.removeHalf(e.V, e.U, e.W) {
			// The first half was present, so the reverse half must be:
			// halves are only ever added and removed in pairs.
			d.adj[e.U] = append(d.adj[e.U], halfEdge{v: e.V, w: e.W})
			d.reattach(del[:i])
			return fmt.Errorf("dyn: delete %d: edge (%d->%d, w=%g) not live", i, e.U, e.V, e.W)
		}
	}
	return nil
}

// removeHalf swap-deletes one (v, w) entry from adj[u].
func (d *DynamicEmbedder) removeHalf(u, v graph.NodeID, w float32) bool {
	list := d.adj[u]
	for i := range list {
		if list[i].v == v && list[i].w == w {
			list[i] = list[len(list)-1]
			d.adj[u] = list[:len(list)-1]
			return true
		}
	}
	return false
}

// reattach restores previously detached edges after a failed batch.
func (d *DynamicEmbedder) reattach(del []graph.Edge) {
	for _, e := range del {
		d.adj[e.U] = append(d.adj[e.U], halfEdge{v: e.V, w: e.W})
		d.adj[e.V] = append(d.adj[e.V], halfEdge{v: e.U, w: e.W})
	}
}

// fold applies the deletions (negated) and insertions to U through the
// exec layer: serial for tiny batches or one worker, atomic adds for
// small ones, the contention-free sharded path for large ones.
func (d *DynamicEmbedder) fold(del, ins []graph.Edge) error {
	if d.foldHook != nil {
		return d.foldHook(del, ins)
	}
	total := len(del) + len(ins)
	if total == 0 {
		return nil
	}
	if cap(d.scratch) < total {
		d.scratch = make([]graph.Edge, total)
	}
	fold := d.scratch[:0]
	for _, e := range del {
		fold = append(fold, graph.Edge{U: e.U, V: e.V, W: -e.W})
	}
	fold = append(fold, ins...)
	d.scratch = fold
	switch {
	// An explicit threshold wins: any batch at or above it takes the
	// sharded path (given parallelism). The serial floor below only
	// arbitrates between serial and atomic folds under the threshold.
	case d.workers > 1 && d.thresh >= 0 && total >= d.thresh:
		if d.plan == nil {
			parts := d.workers
			plan, err := exec.NewEdgePlan(d.n, parts)
			if err != nil {
				return err
			}
			d.plan = plan
		}
		d.stats.ShardedFolds++
		_, err := exec.ShardedEdges(d.kern, fold, d.u.Data, d.plan, d.workers)
		return err
	case d.workers <= 1 || total < 1024:
		d.stats.SerialFolds++
		_, err := exec.SerialEdges(d.kern, fold, d.n, d.u.Data)
		return err
	default:
		d.stats.AtomicFolds++
		_, err := exec.AtomicEdges(d.kern, fold, d.n, d.u.Data, d.workers)
		return err
	}
}

// relabel moves vertex v from its current class to class: the raw mass
// v contributes along its incident edges slides from the old column to
// the new one in the neighbors' rows, and the class counts shift so the
// publish-time 1/n_k normalization stays exact.
func (d *DynamicEmbedder) relabel(v graph.NodeID, class int32) {
	old := d.y[v]
	if old == class {
		return
	}
	k := d.k
	for _, he := range d.adj[v] {
		row := int(he.v) * k
		w := float64(he.w)
		if old >= 0 {
			d.u.Data[row+int(old)] -= w
		}
		if class >= 0 {
			d.u.Data[row+int(class)] += w
		}
	}
	if d.deltaHist > 0 {
		// Every neighbor's row slid mass between columns (v's own row
		// is keyed by its neighbors' classes and does not move). The
		// count shift below rescales two whole columns at publish, so
		// this epoch's delta is promoted to full there; the row marks
		// still matter when a later move restores the counts exactly.
		for _, he := range d.adj[v] {
			d.markDirty(he.v)
		}
		// Label authority follows row ownership: a sharded embedder only
		// reports relabels of vertices it owns (every shard sees the
		// broadcast, exactly one claims it in its delta).
		if d.owned(v) {
			d.relabeled = append(d.relabeled, v)
		}
	}
	if old >= 0 {
		d.counts[old]--
	}
	if class >= 0 {
		d.counts[class]++
	}
	d.y[v] = class
	d.stats.LabelMoves++
}

// publishLocked normalizes U into a fresh matrix and atomically
// publishes it as the next epoch. Copy-on-epoch: earlier snapshots stay
// valid for readers still holding them.
func (d *DynamicEmbedder) publishLocked() *Snapshot {
	t0 := time.Now()
	inv := make([]float64, d.k)
	for c, n := range d.counts {
		if n > 0 {
			inv[c] = 1 / float64(n)
		}
	}
	z := mat.NewDense(d.n, d.k)
	// Only the owned window is normalized into the snapshot; non-owned
	// rows of U hold consistent partial sums (cut-edge mass folded here
	// whose authoritative copy lives on another shard) that are never
	// published. For a standalone embedder the window is the full range.
	parallel.ForChunk(d.workers, d.ownHi-d.ownLo, 0, func(lo, hi int) {
		for u := lo + d.ownLo; u < hi+d.ownLo; u++ {
			src := d.u.Row(u)
			dst := z.Row(u)
			for c := range src {
				dst[c] = src[c] * inv[c]
			}
		}
	})
	var epoch uint64
	if prev := d.cur.Load(); prev != nil {
		epoch = prev.Epoch + 1
		d.stats.Publishes++
	}
	d.sincePub = 0
	s := &Snapshot{
		Epoch:    epoch,
		Instance: d.instance,
		Z:        z,
		Y:        append([]int32(nil), d.y...),
		Edges:    d.edges,
	}
	if d.deltaHist > 0 {
		d.recordDeltaLocked(epoch)
	}
	d.cur.Store(s)
	if d.mPublish != nil {
		d.mPublish.ObserveSince(t0)
	}
	if d.publishHook != nil {
		d.publishHook(epoch, time.Since(t0))
	}
	return s
}

// SetPublishHook installs a callback invoked after every published
// epoch with the epoch number and the publish duration (normalize +
// version). The hook runs with the embedder's writer lock held, so it
// must be cheap and must not call back into the embedder. Pass nil to
// clear. At most one hook is supported; the serving coalescer owns it.
func (d *DynamicEmbedder) SetPublishHook(h func(epoch uint64, dur time.Duration)) {
	d.mu.Lock()
	d.publishHook = h
	d.mu.Unlock()
}
