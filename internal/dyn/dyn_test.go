package dyn

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/gee"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/xrand"
)

// churnScript drives an embedder through a deterministic interleaving
// of insert, delete, and label-update batches and returns the resulting
// live edge list and final labels, so the outcome can be replayed as a
// from-scratch batch embedding.
func churnScript(t *testing.T, d *DynamicEmbedder, n, k, rounds, batch int, seed uint64) (*graph.EdgeList, []int32) {
	t.Helper()
	r := xrand.New(seed)
	live := make([]graph.Edge, 0, rounds*batch)
	y := append([]int32(nil), d.Snapshot().Y...)
	for round := 0; round < rounds; round++ {
		var b Batch
		for i := 0; i < batch; i++ {
			b.Insert = append(b.Insert, graph.Edge{
				U: graph.NodeID(r.Intn(n)),
				V: graph.NodeID(r.Intn(n)),
				W: float32(r.Intn(4) + 1),
			})
		}
		// Delete about a third of a batch's worth from the live set
		// (skipping the edges being inserted in this same batch).
		if len(live) > batch {
			for i := 0; i < batch/3; i++ {
				j := r.Intn(len(live))
				b.Delete = append(b.Delete, live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		// Relabel a handful of vertices: random class, sometimes
		// unlabeling entirely.
		for i := 0; i < 5; i++ {
			v := graph.NodeID(r.Intn(n))
			class := int32(r.Intn(k + 1)) // k means Unknown
			if int(class) == k {
				class = labels.Unknown
			}
			b.Labels = append(b.Labels, LabelUpdate{V: v, Class: class})
			y[v] = class
		}
		if err := d.Apply(b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		live = append(live, b.Insert...)
	}
	return &graph.EdgeList{N: n, Edges: live, Weighted: true}, y
}

// TestDynamicMatchesBatchEmbed is the tentpole acceptance check: after
// any interleaving of insert, delete, and label-update batches, the
// dynamic embedding equals a from-scratch batch Embed on the resulting
// graph within 1e-9 — on both the atomic (small-batch) and sharded
// (large-batch) ingest paths.
func TestDynamicMatchesBatchEmbed(t *testing.T) {
	const n, k = 800, 6
	cases := []struct {
		name string
		opts Options
	}{
		{"atomic-folds", Options{K: k, Workers: 8, ShardedThreshold: -1}},
		{"sharded-folds", Options{K: k, Workers: 8, ShardedThreshold: 1}},
		{"serial-folds", Options{K: k, Workers: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			y0 := labels.SampleSemiSupervised(n, k, 0.3, 71)
			d, err := New(n, y0, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			el, yFinal := churnScript(t, d, n, k, 12, 1500, 73)
			want, err := gee.Embed(gee.Reference, el, yFinal, gee.Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			snap := d.Snapshot()
			if snap.Edges != int64(len(el.Edges)) {
				t.Fatalf("live edges %d, want %d", snap.Edges, len(el.Edges))
			}
			if !want.Z.EqualTol(snap.Z, 1e-9) {
				t.Fatalf("dynamic deviates from batch embed by %v", want.Z.MaxAbsDiff(snap.Z))
			}
			for v := 0; v < n; v++ {
				if snap.Y[v] != yFinal[v] {
					t.Fatalf("label of %d drifted: %d vs %d", v, snap.Y[v], yFinal[v])
				}
			}
		})
	}
}

// TestDynamicFoldRouting checks the ingest actually takes the intended
// exec path per batch size.
func TestDynamicFoldRouting(t *testing.T) {
	y := labels.Full(2000, 4, 79)
	d, err := New(2000, y, Options{K: 4, Workers: 4, ShardedThreshold: 4096})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(m int) []graph.Edge {
		r := xrand.New(uint64(m))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: graph.NodeID(r.Intn(2000)), V: graph.NodeID(r.Intn(2000)), W: 1}
		}
		return edges
	}
	if err := d.AddEdges(mk(100)); err != nil { // < 1024: serial
		t.Fatal(err)
	}
	if err := d.AddEdges(mk(2000)); err != nil { // < threshold: atomic
		t.Fatal(err)
	}
	if err := d.AddEdges(mk(8192)); err != nil { // >= threshold: sharded
		t.Fatal(err)
	}
	if err := d.AddEdges(mk(8192)); err != nil { // sharded again, plan reused
		t.Fatal(err)
	}
	st := d.Stats()
	if st.SerialFolds != 1 || st.AtomicFolds != 1 || st.ShardedFolds != 2 {
		t.Fatalf("fold routing: serial=%d atomic=%d sharded=%d, want 1/1/2",
			st.SerialFolds, st.AtomicFolds, st.ShardedFolds)
	}
	if st.Batches != 4 || st.Inserts != 100+2000+8192+8192 {
		t.Fatalf("counters: %+v", st)
	}
	// An explicit threshold below the serial floor must be honored: a
	// 500-edge batch with threshold 256 takes the sharded path.
	low, err := New(2000, labels.Full(2000, 4, 81), Options{K: 4, Workers: 4, ShardedThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := low.AddEdges(mk(500)); err != nil {
		t.Fatal(err)
	}
	if st := low.Stats(); st.ShardedFolds != 1 {
		t.Fatalf("threshold=256 ignored for a 500-edge batch: %+v", st)
	}
}

func TestDynamicDeleteRollback(t *testing.T) {
	y := labels.Full(10, 2, 83)
	d, err := New(10, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}, {U: 4, V: 4, W: 2}}
	if err := d.AddEdges(base); err != nil {
		t.Fatal(err)
	}
	before := d.Snapshot()
	// Second delete is not live: the whole batch must fail untouched.
	err = d.DeleteEdges([]graph.Edge{{U: 0, V: 1, W: 1}, {U: 5, V: 6, W: 1}})
	if err == nil {
		t.Fatal("missing delete accepted")
	}
	if got := d.Snapshot(); got.Epoch != before.Epoch || got.Edges != before.Edges {
		t.Fatalf("failed batch mutated state: %d/%d vs %d/%d",
			got.Epoch, got.Edges, before.Epoch, before.Edges)
	}
	// The rolled-back edge must still be deletable (adjacency intact),
	// including the self-loop's paired halves.
	if err := d.DeleteEdges(base); err != nil {
		t.Fatalf("rollback corrupted adjacency: %v", err)
	}
	if got := d.Snapshot(); got.Edges != 0 {
		t.Fatalf("%d live edges after deleting everything", got.Edges)
	}
	// Weight must match exactly.
	if err := d.AddEdges(base[:1]); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteEdges([]graph.Edge{{U: 0, V: 1, W: 2}}); err == nil {
		t.Fatal("weight-mismatched delete accepted")
	}
}

// TestDynamicFoldErrorRollback is the regression test for the Apply
// rollback bug: when the fold fails *after* detachDeletes succeeded,
// the detached adjacency halves must be reattached — before the fix
// they silently vanished, corrupting the adjacency/U invariant (the
// deleted edges' mass stayed in U with no half-edges to account for
// it, and later exact-match deletes of those edges failed).
func TestDynamicFoldErrorRollback(t *testing.T) {
	y := labels.Full(10, 2, 131)
	d, err := New(10, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 2}}
	if err := d.AddEdges(base); err != nil {
		t.Fatal(err)
	}
	before := d.Snapshot()
	boom := errors.New("injected fold failure")
	d.foldHook = func(del, ins []graph.Edge) error { return boom }
	err = d.Apply(Batch{Delete: base[:2], Insert: []graph.Edge{{U: 5, V: 6, W: 1}}})
	if !errors.Is(err, boom) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	d.foldHook = nil
	if got := d.Snapshot(); got.Epoch != before.Epoch || got.Edges != before.Edges {
		t.Fatalf("failed batch mutated state: %d/%d vs %d/%d",
			got.Epoch, got.Edges, before.Epoch, before.Edges)
	}
	// The failed batch's insert must not have been applied.
	if err := d.DeleteEdges([]graph.Edge{{U: 5, V: 6, W: 1}}); err == nil {
		t.Fatal("insert from the failed batch is live")
	}
	// The failed batch's deletes must still be live — exact-match
	// deleting the full base set only works if the rollback reattached
	// both halves of each detached edge.
	if err := d.DeleteEdges(base); err != nil {
		t.Fatalf("fold failure corrupted the adjacency: %v", err)
	}
	if got := d.Snapshot().Edges; got != 0 {
		t.Fatalf("%d live edges after deleting everything", got)
	}
}

func TestDynamicLabelLifecycle(t *testing.T) {
	// One triangle, labels moving around: classes that empty out must
	// publish as zero columns, and re-labeling must restore mass.
	n := 3
	y := []int32{0, 1, labels.Unknown}
	d, err := New(n, y, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	edges := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1}}
	if err := d.AddEdges(edges); err != nil {
		t.Fatal(err)
	}
	// Move vertex 0 into class 2, then unlabel vertex 1: class 0 and 1
	// are now empty.
	if err := d.UpdateLabels([]LabelUpdate{{V: 0, Class: 2}, {V: 1, Class: labels.Unknown}}); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	for u := 0; u < n; u++ {
		if snap.Z.At(u, 0) != 0 || snap.Z.At(u, 1) != 0 {
			t.Fatalf("empty classes leak mass at row %d: %v", u, snap.Z.Row(u))
		}
	}
	want, err := gee.Embed(gee.Reference, &graph.EdgeList{N: n, Edges: edges},
		[]int32{2, labels.Unknown, labels.Unknown}, gee.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Z.EqualTol(snap.Z, 1e-9) {
		t.Fatalf("label lifecycle deviates by %v", want.Z.MaxAbsDiff(snap.Z))
	}
	// No-op relabel must not bump counters.
	st := d.Stats()
	if err := d.UpdateLabels([]LabelUpdate{{V: 0, Class: 2}}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().LabelMoves != st.LabelMoves {
		t.Fatal("no-op relabel counted as a move")
	}
}

func TestDynamicManualPublish(t *testing.T) {
	y := labels.Full(50, 2, 89)
	d, err := New(50, y, Options{K: 2, ManualPublish: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdges([]graph.Edge{{U: 0, V: 1, W: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := d.Snapshot(); got.Epoch != 0 || got.Edges != 0 {
		t.Fatalf("manual mode auto-published: %+v", got)
	}
	snap := d.Publish()
	if snap.Epoch != 1 || snap.Edges != 1 {
		t.Fatalf("publish: epoch=%d edges=%d", snap.Epoch, snap.Edges)
	}
	if d.Epoch() != 1 {
		t.Fatalf("Epoch() = %d", d.Epoch())
	}
}

// TestDynamicPublishEvery covers the op-count auto-publish policy:
// publishes fire only once PublishEvery ops accumulated, label moves
// count as ops, and a manual Publish resets the accumulator.
func TestDynamicPublishEvery(t *testing.T) {
	y := labels.Full(100, 2, 91)
	d, err := New(100, y, Options{K: 2, PublishEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(m, seed int) []graph.Edge {
		r := xrand.New(uint64(seed))
		edges := make([]graph.Edge, m)
		for i := range edges {
			edges[i] = graph.Edge{U: graph.NodeID(r.Intn(100)), V: graph.NodeID(r.Intn(100)), W: 1}
		}
		return edges
	}
	for i := 0; i < 3; i++ { // 90 ops: below threshold, no publish
		if err := d.AddEdges(mk(30, i)); err != nil {
			t.Fatal(err)
		}
	}
	if e := d.Epoch(); e != 0 {
		t.Fatalf("published at %d ops < PublishEvery: epoch %d", 90, e)
	}
	if err := d.AddEdges(mk(30, 3)); err != nil { // 120 >= 100: publish
		t.Fatal(err)
	}
	if e := d.Epoch(); e != 1 {
		t.Fatalf("no publish after crossing threshold: epoch %d", e)
	}
	if s := d.Snapshot(); s.Edges != 120 {
		t.Fatalf("published snapshot has %d edges, want 120", s.Edges)
	}
	// Applied label moves count as ops; no-op reassignments do not.
	ups := make([]LabelUpdate, 0, 120)
	for v := 0; v < 100; v++ {
		ups = append(ups, LabelUpdate{V: graph.NodeID(v), Class: int32(v % 2)}) // no-ops
	}
	if err := d.UpdateLabels(ups); err != nil {
		t.Fatal(err)
	}
	if e := d.Epoch(); e != 1 {
		t.Fatalf("no-op label moves triggered a publish: epoch %d", e)
	}
	for i := range ups {
		ups[i].Class = 1 - ups[i].Class
	}
	if err := d.UpdateLabels(ups); err != nil { // 100 real moves: publish
		t.Fatal(err)
	}
	if e := d.Epoch(); e != 2 {
		t.Fatalf("label moves did not count toward PublishEvery: epoch %d", e)
	}
	// Manual Publish still works and resets the accumulator.
	if err := d.AddEdges(mk(60, 4)); err != nil {
		t.Fatal(err)
	}
	if s := d.Publish(); s.Epoch != 3 {
		t.Fatalf("manual publish: epoch %d", s.Epoch)
	}
	if err := d.AddEdges(mk(60, 5)); err != nil { // 60 < 100 since reset
		t.Fatal(err)
	}
	if e := d.Epoch(); e != 3 {
		t.Fatalf("accumulator not reset by manual publish: epoch %d", e)
	}
	if st := d.Stats(); st.Publishes != 3 {
		t.Fatalf("Publishes = %d, want 3", st.Publishes)
	}
}

// TestDynamicConcurrentPublish runs Apply and Publish from separate
// goroutines while readers assert epoch monotonicity and that Query is
// consistent: when the published epoch did not change around a Query,
// the returned row must equal that snapshot's row exactly. Run under
// `go test -race` this is the satellite serving-consistency check.
func TestDynamicConcurrentPublish(t *testing.T) {
	const n, k = 200, 3
	d, err := New(n, labels.Full(n, k, 107), Options{K: k, ManualPublish: true})
	if err != nil {
		t.Fatal(err)
	}
	first := d.Snapshot()
	firstRow := append([]float64(nil), first.Z.Row(0)...)
	done := make(chan struct{})
	errs := make(chan string, 8)
	var wg sync.WaitGroup
	for reader := 0; reader < 3; reader++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(uint64(300 + id))
			var last uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				s1 := d.Snapshot()
				if s1.Epoch < last {
					errs <- "epoch went backwards"
					return
				}
				last = s1.Epoch
				v := graph.NodeID(r.Intn(n))
				row := d.Query(v)
				s2 := d.Snapshot()
				if s2.Epoch < s1.Epoch {
					errs <- "epoch went backwards across a query"
					return
				}
				if s1.Epoch == s2.Epoch {
					want := s1.Z.Row(int(v))
					for c := range row {
						if row[c] != want[c] {
							errs <- "query row inconsistent with the stable snapshot"
							return
						}
					}
				}
			}
		}(reader)
	}
	wg.Add(1)
	go func() { // concurrent publisher
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			s := d.Publish()
			if s.Epoch <= last {
				errs <- "publish did not advance the epoch"
				return
			}
			last = s.Epoch
		}
	}()
	r := xrand.New(109)
	for round := 0; round < 200; round++ {
		b := Batch{Insert: make([]graph.Edge, 50)}
		for i := range b.Insert {
			b.Insert[i] = graph.Edge{U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1}
		}
		if err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	// Copy-on-epoch: the snapshot held since before the churn is untouched.
	for c := range firstRow {
		if first.Z.Row(0)[c] != firstRow[c] {
			t.Fatal("held snapshot mutated by later publishes")
		}
	}
}

func TestDynamicValidation(t *testing.T) {
	y := labels.Full(10, 2, 97)
	if _, err := New(0, nil, Options{K: 2}); err == nil {
		t.Fatal("zero vertices accepted")
	}
	if _, err := New(10, y[:5], Options{K: 2}); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if _, err := New(10, make([]int32, 10), Options{}); err != nil {
		t.Fatal("K inference from labels failed")
	}
	unlabeled := make([]int32, 10)
	for i := range unlabeled {
		unlabeled[i] = labels.Unknown
	}
	if _, err := New(10, unlabeled, Options{}); err == nil {
		t.Fatal("no labels and K unset accepted")
	}
	d, err := New(10, y, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdges([]graph.Edge{{U: 99, V: 0, W: 1}}); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if err := d.DeleteEdges([]graph.Edge{{U: 99, V: 0, W: 1}}); err == nil {
		t.Fatal("out-of-range delete accepted")
	}
	if err := d.UpdateLabels([]LabelUpdate{{V: 99, Class: 0}}); err == nil {
		t.Fatal("out-of-range label vertex accepted")
	}
	if err := d.UpdateLabels([]LabelUpdate{{V: 0, Class: 7}}); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if err := d.UpdateLabels([]LabelUpdate{{V: 0, Class: -3}}); err == nil {
		t.Fatal("below-Unknown class accepted")
	}
	if row := d.Query(99); row != nil {
		t.Fatal("out-of-range query returned a row")
	}
}

// TestDynamicConcurrentReaders runs ingest while reader goroutines
// hammer Query and Snapshot. Under `go test -race` this is the
// concurrent-serving acceptance check; in any build it verifies
// snapshot immutability and epoch monotonicity.
func TestDynamicConcurrentReaders(t *testing.T) {
	const n, k = 500, 4
	y := labels.SampleSemiSupervised(n, k, 0.5, 101)
	d, err := New(n, y, Options{K: k, Workers: 4, ShardedThreshold: 2048})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := xrand.New(uint64(200 + id))
			var lastEpoch uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				s := d.Snapshot()
				if s.Epoch < lastEpoch {
					errs <- "epoch went backwards"
					return
				}
				lastEpoch = s.Epoch
				if len(s.Y) != n || s.Z.R != n || s.Z.C != k {
					errs <- "malformed snapshot"
					return
				}
				if row := d.Query(graph.NodeID(r.Intn(n))); len(row) != k {
					errs <- "short query row"
					return
				}
			}
		}(reader)
	}
	r := xrand.New(103)
	live := make([]graph.Edge, 0, 1<<14)
	for round := 0; round < 30; round++ {
		var b Batch
		for i := 0; i < 3000; i++ {
			b.Insert = append(b.Insert, graph.Edge{
				U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: 1,
			})
		}
		if len(live) > 1000 {
			for i := 0; i < 500; i++ {
				j := r.Intn(len(live))
				b.Delete = append(b.Delete, live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for i := 0; i < 10; i++ {
			b.Labels = append(b.Labels, LabelUpdate{
				V: graph.NodeID(r.Intn(n)), Class: int32(r.Intn(k)),
			})
		}
		if err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
		live = append(live, b.Insert...)
	}
	close(done)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
	if got := d.Snapshot().Edges; got != int64(len(live)) {
		t.Fatalf("live edges %d, want %d", got, len(live))
	}
}
