package dyn

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/mat"
	"repro/internal/xrand"
)

// follower is a test-side replica state: a copy of one snapshot that
// advances by applying Deltas, exactly like internal/server/client's
// Replica does over HTTP.
type follower struct {
	epoch uint64
	z     *mat.Dense
	y     []int32
	edges int64
}

func newFollower(s *Snapshot) *follower {
	return &follower{epoch: s.Epoch, z: s.Z.Clone(), y: append([]int32(nil), s.Y...), edges: s.Edges}
}

// advance pulls one Delta and applies it (or resyncs from the current
// snapshot). Returns whether a resync was needed.
func (f *follower) advance(d *DynamicEmbedder) bool {
	dl := d.Delta(f.epoch)
	if dl.Resync {
		s := d.Snapshot()
		f.epoch, f.z, f.y, f.edges = s.Epoch, s.Z.Clone(), append([]int32(nil), s.Y...), s.Edges
		return true
	}
	k := f.z.C
	for i, v := range dl.Rows {
		copy(f.z.Row(int(v)), dl.Values[i*k:(i+1)*k])
	}
	for _, lu := range dl.Labels {
		f.y[lu.V] = lu.Class
	}
	f.epoch, f.edges = dl.Epoch, dl.Edges
	return false
}

// mustEqual asserts the follower state is bit-identical to the snapshot.
func (f *follower) mustEqual(t *testing.T, s *Snapshot) {
	t.Helper()
	if f.epoch != s.Epoch || f.edges != s.Edges {
		t.Fatalf("follower at epoch %d/%d edges, snapshot at %d/%d", f.epoch, f.edges, s.Epoch, s.Edges)
	}
	for i, v := range s.Z.Data {
		if f.z.Data[i] != v {
			t.Fatalf("follower Z[%d] = %v, snapshot %v (not bit-identical)", i, f.z.Data[i], v)
		}
	}
	for v := range s.Y {
		if f.y[v] != s.Y[v] {
			t.Fatalf("follower label of %d is %d, snapshot %d", v, f.y[v], s.Y[v])
		}
	}
}

// TestDeltaRowTracking checks the heart of the delta path: an edge
// batch dirties exactly its endpoint rows, the Delta lists them in
// ascending order with the published values, and applying it to a copy
// of the previous epoch reproduces the new epoch bit-for-bit.
func TestDeltaRowTracking(t *testing.T) {
	const n, k = 100, 4
	d, err := New(n, labels.Full(n, k, 211), Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	f := newFollower(d.Snapshot())
	if err := d.AddEdges([]graph.Edge{{U: 7, V: 3, W: 1}, {U: 7, V: 20, W: 2}}); err != nil {
		t.Fatal(err)
	}
	dl := d.Delta(f.epoch)
	if dl.Resync {
		t.Fatal("pure edge batch forced a resync")
	}
	if want := []graph.NodeID{3, 7, 20}; len(dl.Rows) != len(want) {
		t.Fatalf("delta rows %v, want %v", dl.Rows, want)
	} else {
		for i := range want {
			if dl.Rows[i] != want[i] {
				t.Fatalf("delta rows %v, want %v (ascending)", dl.Rows, want)
			}
		}
	}
	if len(dl.Values) != len(dl.Rows)*k {
		t.Fatalf("values len %d for %d rows of width %d", len(dl.Values), len(dl.Rows), k)
	}
	if len(dl.Labels) != 0 {
		t.Fatalf("edge batch reported label changes: %v", dl.Labels)
	}
	if f.advance(d) {
		t.Fatal("advance resynced")
	}
	f.mustEqual(t, d.Snapshot())

	// A second batch: the delta spans only the new epoch now.
	if err := d.AddEdges([]graph.Edge{{U: 50, V: 51, W: 1}}); err != nil {
		t.Fatal(err)
	}
	dl = d.Delta(f.epoch)
	if dl.Resync || len(dl.Rows) != 2 {
		t.Fatalf("second delta: resync=%v rows=%v", dl.Resync, dl.Rows)
	}
	// And a multi-epoch delta from the very start unions both batches.
	dl = d.Delta(0)
	if dl.Resync || len(dl.Rows) != 5 {
		t.Fatalf("merged delta from 0: resync=%v rows=%v", dl.Resync, dl.Rows)
	}
	// Same-epoch delta is empty, not a resync.
	cur := d.Epoch()
	dl = d.Delta(cur)
	if dl.Resync || len(dl.Rows) != 0 || dl.Epoch != cur {
		t.Fatalf("no-op delta: %+v", dl)
	}
}

// TestDeltaResyncSignals covers every path that must refuse a row-wise
// answer: a follower ahead of the embedder, an evicted fromEpoch, a
// disabled ring, a counts-changing relabel (full promotion), and a
// dirty set past half the rows.
func TestDeltaResyncSignals(t *testing.T) {
	const n, k = 40, 3
	mk := func(opts Options) *DynamicEmbedder {
		t.Helper()
		opts.K = k
		d, err := New(n, labels.Full(n, k, 223), opts)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	edge := func(u, v uint32) []graph.Edge { return []graph.Edge{{U: u, V: v, W: 1}} }

	d := mk(Options{})
	if dl := d.Delta(5); !dl.Resync {
		t.Fatal("follower ahead of the embedder not told to resync")
	}

	// Eviction: a 2-deep ring forgets epoch 1 after the third publish.
	d = mk(Options{DeltaHistory: 2})
	for i := uint32(0); i < 3; i++ {
		if err := d.AddEdges(edge(i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if dl := d.Delta(0); !dl.Resync {
		t.Fatal("evicted fromEpoch not told to resync")
	}
	if dl := d.Delta(1); dl.Resync {
		t.Fatal("retained span told to resync")
	}

	// Disabled ring: every delta resyncs.
	d = mk(Options{DeltaHistory: -1})
	if err := d.AddEdges(edge(0, 1)); err != nil {
		t.Fatal(err)
	}
	if dl := d.Delta(0); !dl.Resync {
		t.Fatal("disabled ring served a delta")
	}

	// A relabel that changes class counts rescales whole columns: the
	// epoch is full and the span resyncs — including when merged with
	// neighboring row-sized epochs.
	d = mk(Options{})
	if err := d.AddEdges(edge(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.UpdateLabels([]LabelUpdate{{V: 0, Class: (labels.Full(n, k, 223)[0] + 1) % k}}); err != nil {
		t.Fatal(err)
	}
	if dl := d.Delta(1); !dl.Resync {
		t.Fatal("counts-changing relabel served row-wise")
	}
	if dl := d.Delta(0); !dl.Resync {
		t.Fatal("span covering a full epoch served row-wise")
	}
	// But the epoch after it is row-sized again.
	if err := d.AddEdges(edge(2, 3)); err != nil {
		t.Fatal(err)
	}
	if dl := d.Delta(2); dl.Resync || len(dl.Rows) != 2 {
		t.Fatalf("post-full epoch: resync=%v rows=%v", dl.Resync, dl.Rows)
	}

	// Dirtying more than half the rows promotes to full even without
	// any label motion.
	d = mk(Options{})
	var wide []graph.Edge
	for u := uint32(0); u+1 < n; u += 2 {
		wide = append(wide, graph.Edge{U: u, V: u + 1, W: 1})
	}
	if err := d.AddEdges(wide); err != nil {
		t.Fatal(err)
	}
	if dl := d.Delta(0); !dl.Resync {
		t.Fatal("near-total dirty set served row-wise")
	}
}

// TestDeltaNetZeroRelabel is the subtle case the counts comparison (as
// opposed to a "any relabel happened" flag) buys: two label moves that
// cancel within one publish window leave the 1/n_k coefficients
// untouched, so the epoch stays row-sized — the delta carries the
// moved vertices' neighbors' rows plus both label reassignments, and a
// follower applying it matches the snapshot bit-for-bit.
func TestDeltaNetZeroRelabel(t *testing.T) {
	const n, k = 30, 2
	y := make([]int32, n)
	for v := range y {
		y[v] = int32(v % k)
	}
	d, err := New(n, y, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	// Give the moving vertices neighbors so mass actually slides.
	if err := d.AddEdges([]graph.Edge{{U: 0, V: 5, W: 1}, {U: 1, V: 6, W: 1}, {U: 10, V: 11, W: 1}}); err != nil {
		t.Fatal(err)
	}
	f := newFollower(d.Snapshot())
	// 0: class 0 → 1 and 1: class 1 → 0 in one batch — counts end where
	// they started.
	if err := d.UpdateLabels([]LabelUpdate{{V: 0, Class: 1}, {V: 1, Class: 0}}); err != nil {
		t.Fatal(err)
	}
	dl := d.Delta(f.epoch)
	if dl.Resync {
		t.Fatal("net-zero relabel pair promoted to full")
	}
	if len(dl.Labels) != 2 {
		t.Fatalf("label changes %v, want vertices 0 and 1", dl.Labels)
	}
	if dl.Labels[0] != (LabelUpdate{V: 0, Class: 1}) || dl.Labels[1] != (LabelUpdate{V: 1, Class: 0}) {
		t.Fatalf("label changes %v", dl.Labels)
	}
	// The moved vertices' neighbors (5 and 6) are the dirty rows; the
	// movers' own rows did not change.
	if len(dl.Rows) != 2 || dl.Rows[0] != 5 || dl.Rows[1] != 6 {
		t.Fatalf("dirty rows %v, want [5 6]", dl.Rows)
	}
	if f.advance(d) {
		t.Fatal("advance resynced")
	}
	f.mustEqual(t, d.Snapshot())
}

// TestDeltaFollowerUnderChurn runs a mixed insert/delete/relabel
// workload with a follower advancing purely through Delta (resyncing
// when told to) and checks bit-exact agreement with every published
// snapshot. Relabel rounds must force at least one resync; edge-only
// rounds must be served row-wise.
func TestDeltaFollowerUnderChurn(t *testing.T) {
	const n, k, rounds = 400, 4, 60
	d, err := New(n, labels.SampleSemiSupervised(n, k, 0.5, 227), Options{K: k, DeltaHistory: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := newFollower(d.Snapshot())
	r := xrand.New(229)
	var live []graph.Edge
	resyncs, rowSyncs := 0, 0
	for round := 0; round < rounds; round++ {
		var b Batch
		for i := 0; i < 40; i++ {
			b.Insert = append(b.Insert, graph.Edge{
				U: graph.NodeID(r.Intn(n)), V: graph.NodeID(r.Intn(n)), W: float32(r.Intn(3) + 1),
			})
		}
		if len(live) > 200 {
			for i := 0; i < 20; i++ {
				j := r.Intn(len(live))
				b.Delete = append(b.Delete, live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		if round%10 == 9 {
			b.Labels = append(b.Labels, LabelUpdate{V: graph.NodeID(r.Intn(n)), Class: int32(r.Intn(k))})
		}
		if err := d.Apply(b); err != nil {
			t.Fatal(err)
		}
		live = append(live, b.Insert...)
		// Let the follower lag a little: sync every third round so
		// deltas span multiple epochs.
		if round%3 == 2 {
			if f.advance(d) {
				resyncs++
			} else {
				rowSyncs++
			}
			f.mustEqual(t, d.Snapshot())
		}
	}
	if resyncs == 0 {
		t.Fatal("relabel rounds never forced a resync")
	}
	if rowSyncs == 0 {
		t.Fatal("edge-only rounds never served a row-wise delta")
	}
	t.Logf("follower: %d row-wise syncs, %d resyncs", rowSyncs, resyncs)
}
