// Epoch-delta tracking: the read-path scale-out story. A replica that
// already holds epoch E should not pay a full O(nK) snapshot transfer
// to reach epoch E' when only a few rows moved — and under edge churn
// only a few rows do move: an insert or delete touches exactly the two
// endpoint rows, and a label move touches the moved vertex's neighbors.
// The embedder therefore marks dirty rows as batches fold and, at each
// publish, files the epoch's dirty set into a bounded ring. Delta
// unions the per-epoch sets and reads the new row values straight from
// the current immutable snapshot, so the ring never stores floats.
//
// The exception is the 1/n_k normalization: a label move that changes
// class counts rescales two whole columns of Z at the next publish, so
// every row with mass in those columns changes — a row list would be
// the whole matrix. Such an epoch is promoted to a "full" delta and
// Delta answers with the resync signal instead (fetch a snapshot).
// Moves that cancel within one publish window (counts end where they
// started) stay row-sized.
package dyn

import (
	"sort"

	"repro/internal/graph"
)

// Delta describes how to bring a copy of the embedding from FromEpoch
// to Epoch. When Resync is false, overwriting the listed rows with
// Values and applying Labels yields the epoch-Epoch snapshot exactly
// (same floats); when Resync is true the span is not reconstructible
// row-wise — the ring evicted FromEpoch, or a covered epoch changed
// class counts — and the caller must fetch a full snapshot instead.
type Delta struct {
	FromEpoch uint64
	Epoch     uint64
	// Instance is the embedder lifetime the epochs belong to (see
	// Snapshot.Instance); a follower holding a different instance's
	// state must resync regardless of the epoch numbers.
	Instance uint64
	Resync   bool
	// Rows lists the changed row ids in ascending order; Values holds
	// their new rows back to back (len(Rows)×K, row-major).
	Rows   []graph.NodeID
	Values []float64
	// Labels carries the final class of every vertex whose label
	// changed in the span, in ascending vertex order.
	Labels []LabelUpdate
	// Edges is the live-edge count at Epoch.
	Edges int64
}

// epochDelta is one ring entry: what one publish changed.
type epochDelta struct {
	epoch     uint64
	full      bool           // counts changed or too many rows: not row-reconstructible
	rows      []graph.NodeID // Z rows the epoch changed (unordered, deduplicated)
	relabeled []graph.NodeID // vertices whose label changed (unordered, may repeat)
}

// markDirty records that row v's embedding changed since the last
// publish. Rows outside the owned window are never published, so they
// never enter the delta. Once more than half the owned rows are dirty
// the epoch is promoted to full: the row list would cost more than the
// snapshot it is meant to avoid.
func (d *DynamicEmbedder) markDirty(v graph.NodeID) {
	if d.dirtyFull || !d.owned(v) || d.dirtyMark[v] == d.dirtyGen {
		return
	}
	d.dirtyMark[v] = d.dirtyGen
	d.dirtyRows = append(d.dirtyRows, v)
	if len(d.dirtyRows) > (d.ownHi-d.ownLo)/2 {
		d.dirtyFull = true
		d.dirtyRows = nil
	}
}

// recordDeltaLocked files the epoch's dirty set into the ring and
// resets the tracking for the next window. The epoch-0 bootstrap
// publish records nothing: the ring describes transitions, and there
// is no epoch before 0 to transition from.
func (d *DynamicEmbedder) recordDeltaLocked(epoch uint64) {
	if epoch > 0 {
		full := d.dirtyFull
		if !full {
			for c, v := range d.counts {
				if v != d.pubCounts[c] {
					full = true
					break
				}
			}
		}
		e := epochDelta{epoch: epoch, full: full}
		if !full {
			e.rows = d.dirtyRows
			e.relabeled = d.relabeled
		}
		if len(d.ring) >= d.deltaHist {
			n := copy(d.ring, d.ring[1:])
			d.ring = d.ring[:n]
		}
		d.ring = append(d.ring, e)
		if d.mDirtyRows != nil {
			// A full epoch effectively dirtied every row (a count change
			// rescaled whole columns); record it as such so the
			// distribution reflects what a follower would have to fetch.
			dirty := len(e.rows)
			if full {
				dirty = d.n
				d.mFullEpochs.Inc()
			}
			d.mDirtyRows.Observe(float64(dirty))
			d.mRing.Set(int64(len(d.ring)))
		}
	}
	copy(d.pubCounts, d.counts)
	d.dirtyGen++
	d.dirtyRows = nil
	d.relabeled = nil
	d.dirtyFull = false
}

// Delta returns how to advance a copy of the embedding from epoch
// `from` to the currently published epoch. A Resync result means the
// span cannot be served row-wise (from is older than the ring, ahead
// of the embedder, a covered epoch was full, or the ring is disabled);
// the caller should fetch a full Snapshot and restart from its epoch.
// Safe for concurrent use with writers; the returned value is owned by
// the caller.
func (d *DynamicEmbedder) Delta(from uint64) *Delta {
	// Under mu: only the cheap header work. The snapshot loaded here is
	// exactly the ring's newest epoch; the ring entry headers are
	// copied out so the row union below — up to history × n/2 ids —
	// never stalls writers on the same mutex. The per-entry rows and
	// relabeled slices are safe to read unlocked: recordDeltaLocked
	// takes ownership of them and nothing mutates them afterwards
	// (eviction only shifts the headers).
	d.mu.Lock()
	snap := d.cur.Load()
	res := &Delta{FromEpoch: from, Epoch: snap.Epoch, Instance: d.instance, Edges: snap.Edges}
	if from == snap.Epoch {
		d.mu.Unlock()
		return res
	}
	if from > snap.Epoch || len(d.ring) == 0 || d.ring[0].epoch > from+1 {
		d.mu.Unlock()
		res.Resync = true
		return res
	}
	entries := append([]epochDelta(nil), d.ring...)
	d.mu.Unlock()

	var rows, relabeled []graph.NodeID
	seenRow := make(map[graph.NodeID]struct{})
	seenLab := make(map[graph.NodeID]struct{})
	for i := range entries {
		e := &entries[i]
		if e.epoch <= from {
			continue
		}
		if e.full {
			res.Resync = true
			return res
		}
		for _, v := range e.rows {
			if _, ok := seenRow[v]; !ok {
				seenRow[v] = struct{}{}
				rows = append(rows, v)
			}
		}
		for _, v := range e.relabeled {
			if _, ok := seenLab[v]; !ok {
				seenLab[v] = struct{}{}
				relabeled = append(relabeled, v)
			}
		}
	}

	// Values and final classes come from the published snapshot, not
	// the ring: intermediate states a row passed through are invisible
	// to a follower jumping from `from` straight to Epoch. A vertex
	// relabeled back to its epoch-`from` class still appears in Labels;
	// reapplying an unchanged class is harmless.
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	sort.Slice(relabeled, func(i, j int) bool { return relabeled[i] < relabeled[j] })
	res.Rows = rows
	res.Values = make([]float64, len(rows)*snap.Z.C)
	for i, v := range rows {
		copy(res.Values[i*snap.Z.C:(i+1)*snap.Z.C], snap.Z.Row(int(v)))
	}
	res.Labels = make([]LabelUpdate, len(relabeled))
	for i, v := range relabeled {
		res.Labels[i] = LabelUpdate{V: v, Class: snap.Y[v]}
	}
	return res
}
