package ligra

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/parallel"
)

// EdgeFunc is the per-edge update function. It is called once per
// traversed arc (u, v, w). Returning true marks v for inclusion in the
// output frontier (subject to Cond and first-claim semantics in sparse
// mode).
type EdgeFunc func(u, v graph.NodeID, w float32) bool

// Options configures an EdgeMap invocation.
type Options struct {
	Workers int
	// Cond is Ligra's per-target condition: arcs into vertices failing
	// Cond are skipped. nil means always true.
	Cond func(v graph.NodeID) bool
	// DenseThresholdDiv is Ligra's representation-switch denominator:
	// traverse dense when |frontier| + out-degree sum > m / div.
	// Zero selects Ligra's default of 20.
	DenseThresholdDiv int64
	// ForceDense / ForceSparse pin the traversal mode (for ablations).
	ForceDense  bool
	ForceSparse bool
}

// EdgeMap traverses the out-edges of the frontier, invoking f per arc,
// and returns the output frontier of vertices for which f returned true.
// Mode selection follows Ligra: sparse (frontier-driven, first-claim
// output dedup) when the frontier is small, dense (one task per vertex,
// sequential within an edge list) when large.
func EdgeMap(g *graph.CSR, frontier *VertexSubset, f EdgeFunc, opt Options) *VertexSubset {
	if frontier.IsEmpty() {
		return Empty(g.N)
	}
	dense := shouldDense(g, frontier, opt)
	if dense {
		return edgeMapDense(g, frontier, f, opt)
	}
	return edgeMapSparse(g, frontier, f, opt)
}

// Process traverses the out-edges of the frontier for side effects only:
// no output frontier is allocated and f's return value is ignored. This
// is the fast path GEE uses (the embedding update wants no new frontier).
// The traversal is always dense-style: parallel over vertices, sequential
// within each vertex's edge list.
func Process(g *graph.CSR, frontier *VertexSubset, f EdgeFunc, opt Options) {
	if frontier.IsEmpty() {
		return
	}
	w := opt.Workers
	if frontier.Size() == frontier.N() {
		// Whole-graph frontier: skip the membership test entirely and
		// chunk by vertex. This is GEE's configuration.
		parallel.ForChunk(w, g.N, 0, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				applyVertex(g, graph.NodeID(u), f, opt.Cond)
			}
		})
		return
	}
	mem := frontier.ToDense()
	parallel.ForChunk(w, g.N, 0, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			if mem[u] {
				applyVertex(g, graph.NodeID(u), f, opt.Cond)
			}
		}
	})
}

// applyVertex walks u's out-edge list sequentially.
func applyVertex(g *graph.CSR, u graph.NodeID, f EdgeFunc, cond func(graph.NodeID) bool) {
	lo, hi := g.Offsets[u], g.Offsets[u+1]
	if g.Weights == nil {
		for i := lo; i < hi; i++ {
			v := g.Targets[i]
			if cond == nil || cond(v) {
				f(u, v, 1)
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		v := g.Targets[i]
		if cond == nil || cond(v) {
			f(u, v, g.Weights[i])
		}
	}
}

// shouldDense implements Ligra's mode heuristic.
func shouldDense(g *graph.CSR, frontier *VertexSubset, opt Options) bool {
	if opt.ForceDense {
		return true
	}
	if opt.ForceSparse {
		return false
	}
	div := opt.DenseThresholdDiv
	if div <= 0 {
		div = 20
	}
	m := g.NumEdges()
	if m == 0 {
		return true
	}
	var outDeg int64
	if frontier.Size() == frontier.N() {
		outDeg = m
	} else {
		nodes := frontier.ToSparse()
		outDeg = parallel.Reduce(opt.Workers, len(nodes), int64(0), func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += g.Degree(nodes[i])
			}
			return s
		}, func(a, b int64) int64 { return a + b })
	}
	return int64(frontier.Size())+outDeg > m/div
}

// edgeMapDense: parallel over all vertices, sequential within each active
// vertex's out-edge list. Output vertices are claimed exactly once via a
// CAS flag array (so the size is exact) and returned in dense form.
// This is the forward/push dense traversal the paper describes
// ("schedules one worker for the edge list of each node").
func edgeMapDense(g *graph.CSR, frontier *VertexSubset, f EdgeFunc, opt Options) *VertexSubset {
	mem := frontier.ToDense()
	claimed := make([]uint32, g.N)
	var outCount atomic.Int64
	parallel.ForChunk(opt.Workers, g.N, 0, func(lo, hi int) {
		var local int64
		for u := lo; u < hi; u++ {
			if !mem[u] {
				continue
			}
			elo, ehi := g.Offsets[u], g.Offsets[u+1]
			for i := elo; i < ehi; i++ {
				v := g.Targets[i]
				if opt.Cond != nil && !opt.Cond(v) {
					continue
				}
				w := float32(1)
				if g.Weights != nil {
					w = g.Weights[i]
				}
				if f(graph.NodeID(u), v, w) && atomic.CompareAndSwapUint32(&claimed[v], 0, 1) {
					local++
				}
			}
		}
		outCount.Add(local)
	})
	out := make([]bool, g.N)
	parallel.For(opt.Workers, g.N, func(v int) { out[v] = atomic.LoadUint32(&claimed[v]) != 0 })
	return &VertexSubset{n: g.N, size: int(outCount.Load()), dense: out}
}

// edgeMapSparse: parallel over frontier vertices; output vertices claimed
// exactly once through a CAS flag array, then compacted.
func edgeMapSparse(g *graph.CSR, frontier *VertexSubset, f EdgeFunc, opt Options) *VertexSubset {
	nodes := frontier.ToSparse()
	claimed := make([]uint32, g.N)
	locals := make([][]graph.NodeID, parallel.Workers(opt.Workers))
	parallel.ForStatic(opt.Workers, len(nodes), func(worker, lo, hi int) {
		var mine []graph.NodeID
		for i := lo; i < hi; i++ {
			u := nodes[i]
			elo, ehi := g.Offsets[u], g.Offsets[u+1]
			for e := elo; e < ehi; e++ {
				v := g.Targets[e]
				if opt.Cond != nil && !opt.Cond(v) {
					continue
				}
				w := float32(1)
				if g.Weights != nil {
					w = g.Weights[e]
				}
				if f(u, v, w) && atomic.CompareAndSwapUint32(&claimed[v], 0, 1) {
					mine = append(mine, v)
				}
			}
		}
		locals[worker] = mine
	})
	var out []graph.NodeID
	for _, l := range locals {
		out = append(out, l...)
	}
	return FromNodes(g.N, out)
}
