package ligra

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBellmanFordUnweightedMatchesBFS(t *testing.T) {
	el := gen.ErdosRenyi(4, 500, 4000, 71)
	g := csrOf(t, graph.Symmetrize(el))
	bfs := BFS(8, g, 0)
	bf := BellmanFord(8, g, 0)
	for v := 0; v < g.N; v++ {
		if bfs[v] == -1 {
			if !math.IsInf(bf[v], 1) {
				t.Fatalf("v=%d: BFS unreachable but BF dist %v", v, bf[v])
			}
			continue
		}
		if float64(bfs[v]) != bf[v] {
			t.Fatalf("v=%d: BFS %d vs BF %v", v, bfs[v], bf[v])
		}
	}
}

func TestBellmanFordWeighted(t *testing.T) {
	// 0 -> 1 (w=10), 0 -> 2 (w=1), 2 -> 1 (w=2): best path to 1 costs 3
	el := &graph.EdgeList{N: 3, Weighted: true, Edges: []graph.Edge{
		{U: 0, V: 1, W: 10}, {U: 0, V: 2, W: 1}, {U: 2, V: 1, W: 2},
	}}
	g := csrOf(t, el)
	d := BellmanFord(4, g, 0)
	if d[0] != 0 || d[1] != 3 || d[2] != 1 {
		t.Fatalf("dist=%v", d)
	}
}

func TestBellmanFordAgainstDijkstraOracle(t *testing.T) {
	el := gen.ErdosRenyi(4, 200, 1500, 73)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%9 + 1)
	}
	sym := graph.Symmetrize(el)
	g := csrOf(t, sym)
	got := BellmanFord(8, g, 0)
	// O(n^2) Dijkstra oracle
	n := g.N
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	for iter := 0; iter < n; iter++ {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		nbrs := g.Neighbors(graph.NodeID(u))
		ws := g.EdgeWeights(graph.NodeID(u))
		for i, v := range nbrs {
			if d := dist[u] + float64(ws[i]); d < dist[v] {
				dist[v] = d
			}
		}
	}
	for v := 0; v < n; v++ {
		if math.IsInf(dist[v], 1) != math.IsInf(got[v], 1) {
			t.Fatalf("v=%d reachability mismatch", v)
		}
		if !math.IsInf(dist[v], 1) && math.Abs(dist[v]-got[v]) > 1e-9 {
			t.Fatalf("v=%d: oracle %v got %v", v, dist[v], got[v])
		}
	}
}

func TestKCoreCliquePlusTail(t *testing.T) {
	// 5-clique (coreness 4) with a path tail (coreness 1)
	el := gen.Complete(5)
	for _, e := range []graph.Edge{{U: 4, V: 5, W: 1}, {U: 5, V: 6, W: 1}} {
		el.Edges = append(el.Edges, e)
	}
	el.N = 7
	g := csrOf(t, graph.Symmetrize(el))
	core := KCore(4, g)
	for v := 0; v < 5; v++ {
		if core[v] != 4 {
			t.Fatalf("clique vertex %d coreness %d want 4", v, core[v])
		}
	}
	if core[5] != 1 || core[6] != 1 {
		t.Fatalf("tail coreness %v %v want 1", core[5], core[6])
	}
}

func TestKCoreCycle(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Cycle(10)))
	core := KCore(4, g)
	for v, c := range core {
		if c != 2 {
			t.Fatalf("cycle vertex %d coreness %d want 2", v, c)
		}
	}
}

func TestKCoreIsolated(t *testing.T) {
	g := csrOf(t, &graph.EdgeList{N: 3})
	core := KCore(2, g)
	for _, c := range core {
		if c != 0 {
			t.Fatalf("isolated coreness %d", c)
		}
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		el   *graph.EdgeList
		want int64
	}{
		{"triangle", gen.Cycle(3), 1},
		{"square", gen.Cycle(4), 0},
		{"K4", gen.Complete(4), 4},
		{"K5", gen.Complete(5), 10},
		{"path", gen.Path(10), 0},
	}
	for _, c := range cases {
		g := csrOf(t, graph.Symmetrize(c.el))
		if got := TriangleCount(4, g); got != c.want {
			t.Fatalf("%s: %d triangles want %d", c.name, got, c.want)
		}
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	el := gen.ErdosRenyi(4, 60, 400, 79)
	graph.RemoveSelfLoops(el)
	graph.Deduplicate(2, el)
	// drop reciprocal duplicates for a simple undirected graph
	seen := map[[2]graph.NodeID]bool{}
	simple := el.Edges[:0]
	for _, e := range el.Edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if seen[[2]graph.NodeID{a, b}] {
			continue
		}
		seen[[2]graph.NodeID{a, b}] = true
		simple = append(simple, graph.Edge{U: a, V: b, W: 1})
	}
	el.Edges = simple
	g := csrOf(t, graph.Symmetrize(el))
	adj := make([][]bool, el.N)
	for i := range adj {
		adj[i] = make([]bool, el.N)
	}
	for _, e := range el.Edges {
		adj[e.U][e.V] = true
		adj[e.V][e.U] = true
	}
	var want int64
	for a := 0; a < el.N; a++ {
		for b := a + 1; b < el.N; b++ {
			if !adj[a][b] {
				continue
			}
			for c := b + 1; c < el.N; c++ {
				if adj[a][c] && adj[b][c] {
					want++
				}
			}
		}
	}
	if got := TriangleCount(8, g); got != want {
		t.Fatalf("triangles %d want %d", got, want)
	}
}

func TestBFSDirOptMatchesBFS(t *testing.T) {
	el := gen.RMAT(4, 11, 30_000, gen.Graph500Params, 83)
	sym := graph.Symmetrize(el)
	g := csrOf(t, sym)
	plain := BFS(8, g, 1)
	dirOpt := BFSDirOpt(8, g, g, 1) // symmetric: g is its own transpose
	for v := 0; v < g.N; v++ {
		if plain[v] != dirOpt[v] {
			t.Fatalf("v=%d: BFS %d dir-opt %d", v, plain[v], dirOpt[v])
		}
	}
}

func TestBFSDirOptDirected(t *testing.T) {
	el := gen.ErdosRenyi(4, 800, 12_000, 89)
	g := csrOf(t, el)
	gT := graph.Transpose(4, g)
	plain := BFS(8, g, 0)
	dirOpt := BFSDirOpt(8, g, gT, 0)
	for v := 0; v < g.N; v++ {
		if plain[v] != dirOpt[v] {
			t.Fatalf("v=%d: BFS %d dir-opt %d", v, plain[v], dirOpt[v])
		}
	}
}
