package ligra

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDeltaSteppingMatchesBellmanFord(t *testing.T) {
	el := gen.ErdosRenyi(4, 300, 2500, 111)
	el.Weighted = true
	for i := range el.Edges {
		el.Edges[i].W = float32(i%9 + 1)
	}
	g := csrOf(t, graph.Symmetrize(el))
	want := BellmanFord(8, g, 0)
	for _, delta := range []float64{0, 1, 5, 100} {
		got := DeltaStepping(8, g, 0, delta)
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(got[v], 1) {
				t.Fatalf("delta=%v v=%d: reachability mismatch", delta, v)
			}
			if !math.IsInf(want[v], 1) && math.Abs(want[v]-got[v]) > 1e-9 {
				t.Fatalf("delta=%v v=%d: %v want %v", delta, v, got[v], want[v])
			}
		}
	}
}

func TestDeltaSteppingUnweighted(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Grid2D(6, 6)))
	bfs := BFS(4, g, 0)
	got := DeltaStepping(4, g, 0, 0)
	for v := range bfs {
		if float64(bfs[v]) != got[v] {
			t.Fatalf("v=%d: %v want %v", v, got[v], bfs[v])
		}
	}
}

func TestDeltaSteppingEmptyGraph(t *testing.T) {
	g := csrOf(t, &graph.EdgeList{N: 3})
	d := DeltaStepping(2, g, 1, 0)
	if d[1] != 0 || !math.IsInf(d[0], 1) || !math.IsInf(d[2], 1) {
		t.Fatalf("dist=%v", d)
	}
}

func TestDedupe(t *testing.T) {
	out := dedupe([]graph.NodeID{3, 1, 3, 2, 1})
	if len(out) != 3 {
		t.Fatalf("dedupe=%v", out)
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatal("duplicate survived")
		}
		seen[v] = true
	}
}

func TestGreedyColorProper(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		el := gen.ErdosRenyi(4, 400, 3000, 113+seed)
		g := csrOf(t, graph.Symmetrize(el))
		colors := GreedyColor(8, g, seed)
		for u := 0; u < g.N; u++ {
			if colors[u] < 0 {
				t.Fatalf("vertex %d uncolored", u)
			}
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				if int(v) != u && colors[u] == colors[v] {
					t.Fatalf("adjacent %d,%d share color %d", u, v, colors[u])
				}
			}
		}
	}
}

func TestGreedyColorBipartiteFewColors(t *testing.T) {
	// grid is bipartite: greedy with random priorities stays small
	g := csrOf(t, graph.Symmetrize(gen.Grid2D(10, 10)))
	colors := GreedyColor(8, g, 5)
	max := int32(0)
	for _, c := range colors {
		if c > max {
			max = c
		}
	}
	// max degree 4 bounds greedy at 5 colors
	if max > 4 {
		t.Fatalf("grid used %d colors", max+1)
	}
}

func TestGreedyColorCompleteGraph(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Complete(8)))
	colors := GreedyColor(4, g, 7)
	seen := map[int32]bool{}
	for _, c := range colors {
		if seen[c] {
			t.Fatal("K8 requires all distinct colors")
		}
		seen[c] = true
	}
}

func TestGreedyColorDeterministic(t *testing.T) {
	el := gen.ErdosRenyi(4, 200, 1200, 117)
	g := csrOf(t, graph.Symmetrize(el))
	a := GreedyColor(1, g, 9)
	b := GreedyColor(8, g, 9)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("coloring differs across worker counts at %d", v)
		}
	}
}
