package ligra

import (
	"math"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Classic Ligra algorithms, implemented on the same EdgeMap/VertexMap
// interface GEE uses. They serve two purposes: they are regression tests
// proving the engine has real Ligra semantics (frontier evolution,
// sparse/dense switching, CAS claims), and they give downstream users of
// this library the usual graph toolkit (the paper's §II: "This captures
// almost all modern graph algorithms, including PageRank, Connected
// Components, and Betweenness Centrality").

// BFS returns the hop distance from source over out-edges (-1 for
// unreachable vertices). The graph should be symmetrized for undirected
// semantics.
func BFS(workers int, g *graph.CSR, source graph.NodeID) []int32 {
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	parents := make([]int32, g.N)
	for i := range parents {
		parents[i] = -1
	}
	parents[source] = int32(source)
	frontier := FromNodes(g.N, []graph.NodeID{source})
	level := int32(0)
	for !frontier.IsEmpty() {
		level++
		lvl := level
		frontier = EdgeMap(g, frontier, func(u, v graph.NodeID, w float32) bool {
			// claim v once via CAS on its parent slot
			if atomic.CompareAndSwapInt32(&parents[v], -1, int32(u)) {
				atomic.StoreInt32(&dist[v], lvl)
				return true
			}
			return false
		}, Options{Workers: workers, Cond: func(v graph.NodeID) bool {
			return atomic.LoadInt32(&parents[v]) == -1
		}})
	}
	return dist
}

// ConnectedComponents label-propagates the minimum vertex id within each
// (weakly) connected component of a symmetrized graph.
func ConnectedComponents(workers int, g *graph.CSR) []graph.NodeID {
	ids := make([]uint32, g.N)
	for i := range ids {
		ids[i] = uint32(i)
	}
	frontier := All(g.N)
	for !frontier.IsEmpty() {
		frontier = EdgeMap(g, frontier, func(u, v graph.NodeID, w float32) bool {
			// writeMin(ids[v], ids[u])
			for {
				mine := atomic.LoadUint32(&ids[u])
				theirs := atomic.LoadUint32(&ids[v])
				if mine >= theirs {
					return false
				}
				if atomic.CompareAndSwapUint32(&ids[v], theirs, mine) {
					return true
				}
			}
		}, Options{Workers: workers})
	}
	out := make([]graph.NodeID, g.N)
	for i, id := range ids {
		out[i] = graph.NodeID(id)
	}
	return out
}

// PageRank runs power iteration with damping until the L1 delta falls
// below eps or maxIter rounds, returning the score vector (sums to ~1 on
// graphs without dangling vertices; dangling mass is redistributed
// uniformly).
func PageRank(workers int, g *graph.CSR, damping float64, eps float64, maxIter int) []float64 {
	n := g.N
	if n == 0 {
		return nil
	}
	p := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range p {
		p[i] = inv
	}
	deg := graph.OutDegrees(workers, g)
	frontier := All(n)
	for iter := 0; iter < maxIter; iter++ {
		// dangling mass
		dangling := parallel.Reduce(workers, n, 0.0, func(lo, hi int) float64 {
			var s float64
			for v := lo; v < hi; v++ {
				if deg[v] == 0 {
					s += p[v]
				}
			}
			return s
		}, func(a, b float64) float64 { return a + b })
		base := (1-damping)*inv + damping*dangling*inv
		// next is written with atomicx.AddFloat64 during the edge map, so
		// every other access of its cells stays atomic as well.
		parallel.For(workers, n, func(v int) { atomicx.StoreFloat64(&next[v], base) })
		contrib := make([]float64, n)
		parallel.For(workers, n, func(v int) {
			if deg[v] > 0 {
				contrib[v] = damping * p[v] / float64(deg[v])
			}
		})
		Process(g, frontier, func(u, v graph.NodeID, w float32) bool {
			atomicx.AddFloat64(&next[v], contrib[u])
			return false
		}, Options{Workers: workers})
		delta := parallel.Reduce(workers, n, 0.0, func(lo, hi int) float64 {
			var s float64
			for v := lo; v < hi; v++ {
				s += math.Abs(atomicx.LoadFloat64(&next[v]) - p[v])
			}
			return s
		}, func(a, b float64) float64 { return a + b })
		p, next = next, p
		if delta < eps {
			break
		}
	}
	return p
}
