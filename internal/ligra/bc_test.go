package ligra

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteForceBC computes single-source Brandes dependencies with a plain
// serial implementation (BFS + reverse accumulation over explicit
// predecessor lists).
func bruteForceBC(g *graph.CSR, s graph.NodeID) []float64 {
	n := g.N
	dist := make([]int, n)
	sigma := make([]float64, n)
	preds := make([][]graph.NodeID, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	sigma[s] = 1
	queue := []graph.NodeID{s}
	var order []graph.NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			if dist[v] == dist[u]+1 {
				sigma[v] += sigma[u]
				preds[v] = append(preds[v], u)
			}
		}
	}
	delta := make([]float64, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, u := range preds[v] {
			delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
		}
	}
	delta[s] = 0
	return delta
}

func TestBetweennessPath(t *testing.T) {
	// path 0-1-2-3-4 from source 0: delta(v) = #shortest paths through v
	g := csrOf(t, graph.Symmetrize(gen.Path(5)))
	d := BetweennessCentrality(4, g, 0)
	want := []float64{0, 3, 2, 1, 0}
	for v := range want {
		if math.Abs(d[v]-want[v]) > 1e-12 {
			t.Fatalf("delta=%v want %v", d, want)
		}
	}
}

func TestBetweennessMatchesBruteForce(t *testing.T) {
	el := gen.ErdosRenyi(4, 150, 1200, 91)
	g := csrOf(t, graph.Symmetrize(el))
	for _, s := range []graph.NodeID{0, 7, 42} {
		want := bruteForceBC(g, s)
		got := BetweennessCentrality(8, g, s)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9*math.Max(1, want[v]) {
				t.Fatalf("source %d vertex %d: got %v want %v", s, v, got[v], want[v])
			}
		}
	}
}

func TestBetweennessStarCenter(t *testing.T) {
	// from a leaf, the center lies on every path to the other leaves
	g := csrOf(t, graph.Symmetrize(gen.Star(10)))
	d := BetweennessCentrality(4, g, 1)
	if math.Abs(d[0]-8) > 1e-12 { // 8 other leaves beyond center
		t.Fatalf("center dependency %v want 8", d[0])
	}
}

func TestApproxBetweennessScales(t *testing.T) {
	el := gen.ErdosRenyi(4, 100, 900, 93)
	g := csrOf(t, graph.Symmetrize(el))
	// full sampling = exact sum scaled by n/n = plain sum
	var sources []graph.NodeID
	for v := 0; v < g.N; v++ {
		sources = append(sources, graph.NodeID(v))
	}
	approx := ApproxBetweenness(8, g, sources)
	exact := make([]float64, g.N)
	for _, s := range sources {
		for v, x := range bruteForceBC(g, s) {
			exact[v] += x
		}
	}
	for v := range exact {
		if math.Abs(approx[v]-exact[v]) > 1e-6*math.Max(1, exact[v]) {
			t.Fatalf("v=%d: %v want %v", v, approx[v], exact[v])
		}
	}
	if out := ApproxBetweenness(2, g, nil); len(out) != g.N {
		t.Fatal("empty sources must still return a vector")
	}
}

func TestMISValidAndMaximal(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		el := gen.ErdosRenyi(4, 300, 2000, 95+seed)
		g := csrOf(t, graph.Symmetrize(el))
		mis := MaximalIndependentSet(8, g, seed)
		// independence: no two adjacent members
		for u := 0; u < g.N; u++ {
			if !mis[u] {
				continue
			}
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				if int(v) != u && mis[v] {
					t.Fatalf("adjacent members %d,%d", u, v)
				}
			}
		}
		// maximality: every non-member has a member neighbor
		for u := 0; u < g.N; u++ {
			if mis[u] {
				continue
			}
			ok := false
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				if mis[v] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("vertex %d could join the set", u)
			}
		}
	}
}

func TestMISIsolatedAllIn(t *testing.T) {
	g := csrOf(t, &graph.EdgeList{N: 5})
	mis := MaximalIndependentSet(4, g, 1)
	for v, in := range mis {
		if !in {
			t.Fatalf("isolated vertex %d excluded", v)
		}
	}
}

func TestMISCompleteGraphExactlyOne(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Complete(12)))
	mis := MaximalIndependentSet(4, g, 7)
	count := 0
	for _, in := range mis {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("MIS of K_12 has %d members", count)
	}
}

func TestMISDeterministic(t *testing.T) {
	el := gen.ErdosRenyi(4, 200, 1500, 99)
	g := csrOf(t, graph.Symmetrize(el))
	a := MaximalIndependentSet(1, g, 5)
	b := MaximalIndependentSet(8, g, 5)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("MIS differs across worker counts at %d", v)
		}
	}
}
