package ligra

import (
	"math"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// DeltaStepping computes single-source shortest paths over non-negative
// float weights with the classic bucketed relaxation (Meyer & Sanders):
// vertices are settled in distance bands of width delta, light edges
// (w < delta) are relaxed within a band until fixpoint, heavy edges once
// per band. delta <= 0 picks the mean edge weight. Unweighted arcs count
// as 1. Returns +Inf for unreachable vertices.
func DeltaStepping(workers int, g *graph.CSR, source graph.NodeID, delta float64) []float64 {
	n := g.N
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	if delta <= 0 {
		m := g.NumEdges()
		if m == 0 {
			return dist
		}
		var total float64
		for i := int64(0); i < m; i++ {
			total += float64(g.Weight(i))
		}
		delta = total / float64(m)
		if delta <= 0 {
			delta = 1
		}
	}
	bucketOf := func(d float64) int { return int(d / delta) }
	buckets := map[int][]graph.NodeID{0: {source}}
	inBucket := make([]int32, n) // bucket id + 1 the vertex currently sits in, 0 = none
	inBucket[source] = 1
	for cur := 0; len(buckets) > 0; cur++ {
		nodes, ok := buckets[cur]
		if !ok {
			// skip to the next non-empty bucket
			next := -1
			for b := range buckets {
				if b >= cur && (next == -1 || b < next) {
					next = b
				}
			}
			if next == -1 {
				break
			}
			cur = next
			nodes = buckets[cur]
		}
		delete(buckets, cur)
		// settle this band: repeat light-edge relaxation until no vertex
		// re-enters the current bucket
		for len(nodes) > 0 {
			for _, v := range nodes {
				if int(inBucket[v])-1 == cur {
					inBucket[v] = 0
				}
			}
			frontier := FromNodes(n, dedupe(nodes))
			relaxed := EdgeMap(g, frontier, func(u, v graph.NodeID, w float32) bool {
				cand := atomicx.LoadFloat64(&dist[u]) + float64(w)
				return atomicx.MinFloat64(&dist[v], cand)
			}, Options{Workers: workers})
			nodes = nodes[:0]
			for _, v := range relaxed.ToSparse() {
				b := bucketOf(dist[v])
				if b <= cur {
					nodes = append(nodes, v)
					inBucket[v] = int32(cur) + 1
				} else if int(inBucket[v])-1 != b {
					buckets[b] = append(buckets[b], v)
					inBucket[v] = int32(b) + 1
				}
			}
		}
	}
	return dist
}

// dedupe removes duplicate vertex ids (order not preserved).
func dedupe(nodes []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(nodes))
	out := nodes[:0]
	for _, v := range nodes {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// GreedyColor computes a vertex coloring of a symmetrized graph with the
// Jones-Plassmann parallel greedy scheme: a vertex colors itself with
// the smallest color unused by its neighbors once every neighbor with
// higher random priority is colored. Returns the color vector (colors
// are dense small ints; adjacent vertices always differ).
func GreedyColor(workers int, g *graph.CSR, seed uint64) []int32 {
	n := g.N
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	prio := make([]uint64, n)
	parallel.For(workers, n, func(v int) { prio[v] = mix(seed, uint64(v)) })
	higher := func(u, v graph.NodeID) bool {
		return prio[u] > prio[v] || (prio[u] == prio[v] && u > v)
	}
	remaining := n
	for remaining > 0 {
		var colored int
		colored = int(parallel.Reduce(workers, n, int64(0), func(lo, hi int) int64 {
			var c int64
			var used []bool
			for v := lo; v < hi; v++ {
				if atomic.LoadInt32(&colors[v]) != -1 {
					continue
				}
				ready := true
				maxColor := 0
				for _, u := range g.Neighbors(graph.NodeID(v)) {
					if int(u) == v {
						continue
					}
					cu := atomic.LoadInt32(&colors[u])
					if cu == -1 && higher(u, graph.NodeID(v)) {
						ready = false
						break
					}
					if int(cu)+1 > maxColor {
						maxColor = int(cu) + 1
					}
				}
				if !ready {
					continue
				}
				if cap(used) < maxColor+1 {
					used = make([]bool, maxColor+1)
				}
				used = used[:maxColor+1]
				for i := range used {
					used[i] = false
				}
				for _, u := range g.Neighbors(graph.NodeID(v)) {
					if int(u) == v {
						continue
					}
					if cu := atomic.LoadInt32(&colors[u]); cu >= 0 && int(cu) < len(used) {
						used[cu] = true
					}
				}
				pick := int32(len(used))
				for i, taken := range used {
					if !taken {
						pick = int32(i)
						break
					}
				}
				atomic.StoreInt32(&colors[v], pick)
				c++
			}
			return c
		}, func(a, b int64) int64 { return a + b }))
		remaining -= colored
		if colored == 0 && remaining > 0 {
			// cannot happen with distinct priorities; guard anyway
			for v := 0; v < n; v++ {
				if colors[v] == -1 {
					colors[v] = 0
					remaining--
				}
			}
		}
	}
	return colors
}
