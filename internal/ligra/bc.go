package ligra

import (
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// BetweennessCentrality computes Brandes' dependency accumulation from a
// single source over an unweighted symmetrized graph — the Ligra paper's
// BC benchmark (and name-checked in §II of the paper reproduced here).
// It returns the per-vertex dependency scores δ_s(v). Exact all-pairs BC
// sums this over every source; ApproxBetweenness samples sources.
func BetweennessCentrality(workers int, g *graph.CSR, source graph.NodeID) []float64 {
	n := g.N
	sigma := make([]float64, n) // shortest-path counts
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	sigma[source] = 1
	dist[source] = 0

	// forward phase: level-synchronous BFS accumulating path counts
	var levels []*VertexSubset
	frontier := FromNodes(n, []graph.NodeID{source})
	levels = append(levels, frontier)
	for level := int32(1); !frontier.IsEmpty(); level++ {
		lvl := level
		frontier = EdgeMap(g, frontier, func(u, v graph.NodeID, w float32) bool {
			// claim v for this level (first writer sets dist)
			if atomic.CompareAndSwapInt32(&dist[v], -1, lvl) {
				atomicx.AddFloat64(&sigma[v], atomicx.LoadFloat64(&sigma[u]))
				return true
			}
			if atomic.LoadInt32(&dist[v]) == lvl {
				atomicx.AddFloat64(&sigma[v], atomicx.LoadFloat64(&sigma[u]))
			}
			return false
		}, Options{Workers: workers, Cond: func(v graph.NodeID) bool {
			d := atomic.LoadInt32(&dist[v])
			return d == -1 || d == lvl
		}})
		if !frontier.IsEmpty() {
			levels = append(levels, frontier)
		}
	}

	// backward phase: dependency accumulation level by level
	delta := make([]float64, n)
	for l := len(levels) - 1; l >= 1; l-- {
		VertexMap(workers, levels[l], func(v graph.NodeID) {
			// pull from predecessors: for each neighbor u at dist-1,
			// δ(u) += σ(u)/σ(v) · (1 + δ(v)); push form with atomics.
			// sigma/dist/delta cells of other levels are stable here
			// (level barrier), but they are written atomically during
			// the racy phases, so they are read atomically too — one
			// discipline per cell, checked by the atomiccell analyzer.
			dv := (1 + atomicx.LoadFloat64(&delta[v])) / atomicx.LoadFloat64(&sigma[v])
			dlv := atomic.LoadInt32(&dist[v])
			for _, u := range g.Neighbors(v) {
				if atomic.LoadInt32(&dist[u]) == dlv-1 {
					atomicx.AddFloat64(&delta[u], atomicx.LoadFloat64(&sigma[u])*dv)
				}
			}
		})
	}
	delta[source] = 0
	return delta
}

// ApproxBetweenness sums single-source dependencies over sampled sources
// (Brandes-Pich approximation), scaled to estimate full betweenness.
func ApproxBetweenness(workers int, g *graph.CSR, sources []graph.NodeID) []float64 {
	out := make([]float64, g.N)
	for _, s := range sources {
		d := BetweennessCentrality(workers, g, s)
		for v, x := range d {
			out[v] += x
		}
	}
	if len(sources) > 0 {
		scale := float64(g.N) / float64(len(sources))
		for v := range out {
			out[v] *= scale
		}
	}
	return out
}

// MaximalIndependentSet computes an MIS with Luby's randomized algorithm
// on a symmetrized graph: every round, vertices that beat all live
// neighbors' priorities join the set; their neighbors leave. Returns the
// membership vector. Deterministic in seed.
func MaximalIndependentSet(workers int, g *graph.CSR, seed uint64) []bool {
	n := g.N
	const (
		undecided uint32 = 0
		in        uint32 = 1
		out       uint32 = 2
	)
	state := make([]uint32, n)
	prio := make([]uint64, n)
	parallel.For(workers, n, func(v int) {
		prio[v] = mix(seed, uint64(v))
	})
	for {
		var joined atomic.Int64
		var remaining atomic.Int64
		parallel.For(workers, n, func(v int) {
			if atomic.LoadUint32(&state[v]) != undecided {
				return
			}
			best := true
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if int(u) == v {
					continue
				}
				if atomic.LoadUint32(&state[u]) == undecided &&
					(prio[u] > prio[v] || (prio[u] == prio[v] && u > graph.NodeID(v))) {
					best = false
					break
				}
				if atomic.LoadUint32(&state[u]) == in {
					best = false
					break
				}
			}
			if best {
				atomic.StoreUint32(&state[v], in)
				joined.Add(1)
			}
		})
		// neighbors of newly joined vertices drop out
		parallel.For(workers, n, func(v int) {
			if atomic.LoadUint32(&state[v]) != undecided {
				return
			}
			for _, u := range g.Neighbors(graph.NodeID(v)) {
				if atomic.LoadUint32(&state[u]) == in {
					atomic.StoreUint32(&state[v], out)
					return
				}
			}
			remaining.Add(1)
		})
		if remaining.Load() == 0 {
			break
		}
		if joined.Load() == 0 {
			// ties blocked progress (possible only with equal priorities);
			// bump the seed-derived priorities and continue
			parallel.For(workers, n, func(v int) {
				prio[v] = mix(prio[v], uint64(v)+1)
			})
		}
	}
	mis := make([]bool, n)
	for v := range mis {
		mis[v] = state[v] == in
	}
	return mis
}

// mix is a splitmix64-style hash for per-vertex priorities.
func mix(a, b uint64) uint64 {
	x := a ^ (b * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
