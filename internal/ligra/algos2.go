package ligra

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/atomicx"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// BellmanFord computes single-source shortest path distances over
// non-negative edge weights using frontier-based relaxation with Ligra's
// writeMin primitive (atomicx.MinFloat64). Unweighted arcs count as 1.
// Returns +Inf for unreachable vertices. Negative cycles are not
// detected (weights are expected non-negative in this repository).
func BellmanFord(workers int, g *graph.CSR, source graph.NodeID) []float64 {
	n := g.N
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[source] = 0
	frontier := FromNodes(n, []graph.NodeID{source})
	for round := 0; round < n && !frontier.IsEmpty(); round++ {
		frontier = EdgeMap(g, frontier, func(u, v graph.NodeID, w float32) bool {
			cand := atomicx.LoadFloat64(&dist[u]) + float64(w)
			return atomicx.MinFloat64(&dist[v], cand)
		}, Options{Workers: workers})
	}
	return dist
}

// KCore computes the coreness of every vertex of a symmetrized graph by
// iterative peeling: repeatedly remove vertices of degree < k, the
// removed vertices at level k have coreness k-1. Implemented with
// frontier-driven decrement propagation (the standard Ligra formulation).
func KCore(workers int, g *graph.CSR) []int32 {
	n := g.N
	deg := make([]int64, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.NodeID(v))
	}
	core := make([]int32, n)
	alive := make([]bool, n)
	remaining := n
	for i := range alive {
		alive[i] = true
	}
	for k := int32(1); remaining > 0; k++ {
		// peel everything with degree < k until fixpoint
		for {
			var peel []graph.NodeID
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] < int64(k) {
					peel = append(peel, graph.NodeID(v))
				}
			}
			if len(peel) == 0 {
				break
			}
			for _, v := range peel {
				alive[v] = false
				core[v] = k - 1
				remaining--
			}
			frontier := FromNodes(n, peel)
			Process(g, frontier, func(u, v graph.NodeID, w float32) bool {
				if alive[v] {
					atomic.AddInt64(&deg[v], -1)
				}
				return false
			}, Options{Workers: workers})
		}
	}
	return core
}

// TriangleCount counts triangles of an undirected simple graph given in
// symmetrized CSR form with sorted adjacency lists. Each triangle is
// counted once via the rank-ordering trick: only paths u < v < w with
// u→v, u→w, v→w are intersected.
func TriangleCount(workers int, g *graph.CSR) int64 {
	return parallel.Reduce(workers, g.N, int64(0), func(lo, hi int) int64 {
		var count int64
		for u := lo; u < hi; u++ {
			nu := higherNeighbors(g, graph.NodeID(u))
			for _, v := range nu {
				count += sortedIntersectCount(nu, higherNeighbors(g, v))
			}
		}
		return count
	}, func(a, b int64) int64 { return a + b })
}

// higherNeighbors returns the suffix of u's sorted adjacency containing
// neighbors with id > u.
func higherNeighbors(g *graph.CSR, u graph.NodeID) []graph.NodeID {
	nbrs := g.Neighbors(u)
	idx := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] > u })
	return nbrs[idx:]
}

// sortedIntersectCount counts common elements of two ascending slices.
func sortedIntersectCount(a, b []graph.NodeID) int64 {
	var count int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// BFSDirOpt is direction-optimizing BFS (Beamer et al., the optimization
// Ligra's dense/sparse switch implements): small frontiers push along
// out-edges, large frontiers pull along in-edges of the transpose. For a
// symmetrized graph pass g as its own transpose.
func BFSDirOpt(workers int, g, gT *graph.CSR, source graph.NodeID) []int32 {
	n := g.N
	dist := make([]int32, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[source] = 0
	parent[source] = int32(source)
	frontier := FromNodes(n, []graph.NodeID{source})
	for level := int32(1); !frontier.IsEmpty(); level++ {
		if frontier.Size() > n/20 { // dense pull round
			mem := frontier.ToDense()
			next := make([]bool, n)
			var count atomic.Int64
			parallel.For(workers, n, func(v int) {
				// parent/dist are CASed by the sparse push rounds, so the
				// dense rounds keep the same atomic discipline even though
				// each v is owned by exactly one worker here.
				if atomic.LoadInt32(&parent[v]) != -1 {
					return
				}
				for _, u := range gT.Neighbors(graph.NodeID(v)) {
					if mem[u] {
						atomic.StoreInt32(&parent[v], int32(u))
						atomic.StoreInt32(&dist[v], level)
						next[v] = true
						count.Add(1)
						return
					}
				}
			})
			frontier = &VertexSubset{n: n, size: int(count.Load()), dense: next}
			continue
		}
		lvl := level
		frontier = EdgeMap(g, frontier, func(u, v graph.NodeID, w float32) bool {
			if atomic.CompareAndSwapInt32(&parent[v], -1, int32(u)) {
				atomic.StoreInt32(&dist[v], lvl)
				return true
			}
			return false
		}, Options{Workers: workers, Cond: func(v graph.NodeID) bool {
			return atomic.LoadInt32(&parent[v]) == -1
		}})
	}
	return dist
}
