package ligra

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func csrOf(t *testing.T, el *graph.EdgeList) *graph.CSR {
	t.Helper()
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
	g := graph.BuildCSR(4, el)
	graph.SortAdjacency(4, g)
	return g
}

func TestVertexSubsetAll(t *testing.T) {
	vs := All(10)
	if vs.Size() != 10 || vs.N() != 10 || vs.IsEmpty() {
		t.Fatalf("size=%d", vs.Size())
	}
	for v := graph.NodeID(0); v < 10; v++ {
		if !vs.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
}

func TestVertexSubsetSparseDenseConversion(t *testing.T) {
	vs := FromNodes(10, []graph.NodeID{3, 7, 1})
	if vs.Size() != 3 {
		t.Fatal("size")
	}
	d := vs.ToDense()
	for v := 0; v < 10; v++ {
		want := v == 1 || v == 3 || v == 7
		if d[v] != want {
			t.Fatalf("dense[%d]=%v", v, d[v])
		}
	}
	sp := vs.ToSparse()
	if len(sp) != 3 {
		t.Fatalf("sparse len %d", len(sp))
	}
	vs2 := FromDense(d)
	if vs2.Size() != 3 {
		t.Fatalf("FromDense size %d", vs2.Size())
	}
	back := vs2.ToSparse()
	if len(back) != 3 || back[0] != 1 || back[1] != 3 || back[2] != 7 {
		t.Fatalf("round trip sparse %v", back)
	}
}

func TestVertexSubsetEmpty(t *testing.T) {
	e := Empty(5)
	if !e.IsEmpty() || e.Size() != 0 {
		t.Fatal("Empty not empty")
	}
	if e.Contains(0) {
		t.Fatal("empty contains 0")
	}
}

func TestVertexMapVisitsActiveOnly(t *testing.T) {
	vs := FromNodes(100, []graph.NodeID{5, 50, 99})
	var count atomic.Int64
	seen := make([]int32, 100)
	VertexMap(4, vs, func(v graph.NodeID) {
		atomic.AddInt32(&seen[v], 1)
		count.Add(1)
	})
	if count.Load() != 3 {
		t.Fatalf("visited %d", count.Load())
	}
	if seen[5] != 1 || seen[50] != 1 || seen[99] != 1 {
		t.Fatal("wrong vertices")
	}
}

func TestVertexFilter(t *testing.T) {
	vs := All(10)
	even := VertexFilter(2, vs, func(v graph.NodeID) bool { return v%2 == 0 })
	if even.Size() != 5 {
		t.Fatalf("size=%d", even.Size())
	}
	if !even.Contains(4) || even.Contains(3) {
		t.Fatal("wrong membership")
	}
}

func TestEdgeMapVisitsEveryArcOnce(t *testing.T) {
	el := gen.ErdosRenyi(4, 100, 3000, 1)
	g := csrOf(t, el)
	for _, force := range []Options{{ForceDense: true}, {ForceSparse: true}, {}} {
		var visits atomic.Int64
		opt := force
		opt.Workers = 8
		EdgeMap(g, All(g.N), func(u, v graph.NodeID, w float32) bool {
			visits.Add(1)
			return false
		}, opt)
		if visits.Load() != g.NumEdges() {
			t.Fatalf("opt %+v: visited %d arcs want %d", force, visits.Load(), g.NumEdges())
		}
	}
}

func TestEdgeMapOutputFrontierExactUnderRaces(t *testing.T) {
	// star graph: every leaf update targets the same few vertices
	el := gen.Star(1000)
	g := csrOf(t, graph.Symmetrize(el))
	// frontier = leaves; every leaf points at center: output must be
	// exactly {center} with size 1 in both modes.
	leaves := make([]graph.NodeID, 0, 999)
	for v := graph.NodeID(1); v < 1000; v++ {
		leaves = append(leaves, v)
	}
	for _, force := range []Options{{ForceDense: true}, {ForceSparse: true}} {
		opt := force
		opt.Workers = 16
		out := EdgeMap(g, FromNodes(g.N, leaves), func(u, v graph.NodeID, w float32) bool {
			return true
		}, opt)
		if out.Size() != 1 || !out.Contains(0) {
			t.Fatalf("opt %+v: out size %d", force, out.Size())
		}
	}
}

func TestEdgeMapCondSkipsTargets(t *testing.T) {
	el := gen.Complete(20)
	g := csrOf(t, graph.Symmetrize(el))
	var visits atomic.Int64
	EdgeMap(g, All(g.N), func(u, v graph.NodeID, w float32) bool {
		visits.Add(1)
		return false
	}, Options{Workers: 4, Cond: func(v graph.NodeID) bool { return v < 10 }})
	// each of 20 vertices has 19 arcs; only arcs into v<10 count
	want := int64(20*19) / 2 // half of targets pass
	if visits.Load() != want {
		t.Fatalf("visits=%d want %d", visits.Load(), want)
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := csrOf(t, gen.Cycle(5))
	out := EdgeMap(g, Empty(5), func(u, v graph.NodeID, w float32) bool { return true }, Options{})
	if !out.IsEmpty() {
		t.Fatal("empty in, non-empty out")
	}
}

func TestProcessFullFrontierVisitsAllArcs(t *testing.T) {
	el := gen.ErdosRenyi(4, 200, 10_000, 3)
	g := csrOf(t, el)
	var visits atomic.Int64
	Process(g, All(g.N), func(u, v graph.NodeID, w float32) bool {
		visits.Add(1)
		return false
	}, Options{Workers: 8})
	if visits.Load() != g.NumEdges() {
		t.Fatalf("visited %d want %d", visits.Load(), g.NumEdges())
	}
}

func TestProcessPartialFrontier(t *testing.T) {
	g := csrOf(t, gen.Cycle(10))
	var visits atomic.Int64
	Process(g, FromNodes(10, []graph.NodeID{0, 5}), func(u, v graph.NodeID, w float32) bool {
		visits.Add(1)
		return false
	}, Options{Workers: 4})
	if visits.Load() != 2 {
		t.Fatalf("visits=%d want 2", visits.Load())
	}
}

func TestProcessWeightsDelivered(t *testing.T) {
	el := &graph.EdgeList{N: 2, Weighted: true, Edges: []graph.Edge{{U: 0, V: 1, W: 2.5}}}
	g := csrOf(t, el)
	var got float32
	Process(g, All(2), func(u, v graph.NodeID, w float32) bool {
		got = w
		return false
	}, Options{Workers: 1})
	if got != 2.5 {
		t.Fatalf("w=%v", got)
	}
}

func TestShouldDenseHeuristic(t *testing.T) {
	el := gen.ErdosRenyi(4, 1000, 40_000, 9)
	g := csrOf(t, el)
	if !shouldDense(g, All(g.N), Options{}) {
		t.Fatal("full frontier must be dense")
	}
	tiny := FromNodes(g.N, []graph.NodeID{0})
	if shouldDense(g, tiny, Options{}) {
		t.Fatal("single-vertex frontier on a 40k-edge graph must be sparse")
	}
	if !shouldDense(g, tiny, Options{ForceDense: true}) {
		t.Fatal("ForceDense ignored")
	}
	if shouldDense(g, All(g.N), Options{ForceSparse: true}) {
		t.Fatal("ForceSparse ignored")
	}
}

func TestBFSPath(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Path(6)))
	dist := BFS(4, g, 0)
	for v := 0; v < 6; v++ {
		if dist[v] != int32(v) {
			t.Fatalf("dist[%d]=%d", v, dist[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	el := &graph.EdgeList{N: 4, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}}
	g := csrOf(t, graph.Symmetrize(el))
	dist := BFS(2, g, 0)
	if dist[1] != 1 || dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("dist=%v", dist)
	}
}

func TestBFSGridDistances(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Grid2D(8, 8)))
	dist := BFS(8, g, 0)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if dist[r*8+c] != int32(r+c) {
				t.Fatalf("dist(%d,%d)=%d want %d", r, c, dist[r*8+c], r+c)
			}
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// two disjoint cycles
	el := &graph.EdgeList{N: 8}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}} {
		el.Edges = append(el.Edges, graph.Edge{U: e[0], V: e[1], W: 1})
	}
	g := csrOf(t, graph.Symmetrize(el))
	cc := ConnectedComponents(8, g)
	if cc[0] != cc[1] || cc[1] != cc[2] || cc[0] != 0 {
		t.Fatalf("component A: %v", cc[:3])
	}
	if cc[4] != cc[5] || cc[5] != cc[6] || cc[6] != cc[7] || cc[4] != 4 {
		t.Fatalf("component B: %v", cc[4:])
	}
	if cc[3] != 3 {
		t.Fatalf("isolated vertex: %v", cc[3])
	}
	if cc[0] == cc[4] {
		t.Fatal("components merged")
	}
}

func TestConnectedComponentsRandomAgainstUnionFind(t *testing.T) {
	el := gen.ErdosRenyi(4, 300, 500, 77)
	sym := graph.Symmetrize(el)
	g := csrOf(t, sym)
	got := ConnectedComponents(8, g)
	// serial union-find oracle
	parent := make([]int, 300)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range el.Edges {
		a, b := find(int(e.U)), find(int(e.V))
		if a != b {
			parent[a] = b
		}
	}
	for u := 0; u < 300; u++ {
		for v := u + 1; v < 300; v++ {
			same := find(u) == find(v)
			gotSame := got[u] == got[v]
			if same != gotSame {
				t.Fatalf("pair (%d,%d): oracle %v, ligra %v", u, v, same, gotSame)
			}
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	el := gen.ErdosRenyi(4, 500, 5000, 55)
	g := csrOf(t, graph.Symmetrize(el))
	pr := PageRank(8, g, 0.85, 1e-10, 100)
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("sum=%v", sum)
	}
}

func TestPageRankStarCenterDominates(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Star(50)))
	pr := PageRank(4, g, 0.85, 1e-12, 200)
	for v := 1; v < 50; v++ {
		if pr[0] <= pr[v] {
			t.Fatalf("center rank %v <= leaf %v", pr[0], pr[v])
		}
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := csrOf(t, graph.Symmetrize(gen.Cycle(10)))
	pr := PageRank(4, g, 0.85, 1e-12, 500)
	for v := 1; v < 10; v++ {
		if math.Abs(pr[v]-pr[0]) > 1e-9 {
			t.Fatalf("cycle not uniform: pr[%d]=%v pr[0]=%v", v, pr[v], pr[0])
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if pr := PageRank(2, graph.BuildCSR(1, &graph.EdgeList{N: 0}), 0.85, 1e-9, 10); pr != nil {
		t.Fatal("expected nil for empty graph")
	}
}

func TestBFSSparseToDenseSwitch(t *testing.T) {
	// A graph big enough that BFS starts sparse and flips dense.
	el := gen.ErdosRenyi(8, 2000, 30_000, 101)
	g := csrOf(t, graph.Symmetrize(el))
	dist := BFS(8, g, 0)
	// sanity: most vertices reachable within a few hops on a dense ER
	reached := 0
	for _, d := range dist {
		if d >= 0 {
			reached++
		}
	}
	if reached < 1900 {
		t.Fatalf("only %d reached", reached)
	}
	// distances must respect edge relaxation: |d(u)-d(v)| <= 1 per edge
	for u := 0; u < g.N; u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			du, dv := dist[u], dist[v]
			if du >= 0 && dv >= 0 && dv > du+1 {
				t.Fatalf("triangle inequality violated: d(%d)=%d d(%d)=%d", u, du, v, dv)
			}
		}
	}
}
