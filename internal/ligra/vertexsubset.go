// Package ligra is a Go implementation of the Ligra shared-memory graph
// processing interface (Shun & Blelloch, PPoPP 2013): VertexSubset
// frontiers with sparse/dense dual representations, EdgeMap with the
// |frontier|-based representation switch, and VertexMap.
//
// The paper runs GEE as an EdgeMap over the full-graph frontier, which
// Ligra evaluates with edgeMapDense: one parallel task per vertex that
// walks that vertex's out-edge list sequentially. That traversal order is
// load-bearing for GEE — updates Z(u, ·) from a single vertex's list
// never race with each other — so this package reproduces it exactly.
package ligra

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// VertexSubset is a set of active vertices (a frontier). It keeps either
// a sparse list of vertex IDs or a dense boolean membership vector, and
// converts lazily like Ligra.
type VertexSubset struct {
	n      int
	size   int
	sparse []graph.NodeID // valid when dense == nil
	dense  []bool         // valid when non-nil
}

// All returns the frontier containing every vertex of an n-vertex graph,
// in dense form (GEE's frontier: "all nodes are active").
func All(n int) *VertexSubset {
	d := make([]bool, n)
	for i := range d {
		d[i] = true
	}
	return &VertexSubset{n: n, size: n, dense: d}
}

// FromNodes returns a sparse frontier over the given vertices (caller
// promises they are unique and in range).
func FromNodes(n int, nodes []graph.NodeID) *VertexSubset {
	return &VertexSubset{n: n, size: len(nodes), sparse: nodes}
}

// FromDense wraps a dense membership vector.
func FromDense(membership []bool) *VertexSubset {
	size := 0
	for _, b := range membership {
		if b {
			size++
		}
	}
	return &VertexSubset{n: len(membership), size: size, dense: membership}
}

// Empty returns the empty frontier for an n-vertex graph.
func Empty(n int) *VertexSubset { return &VertexSubset{n: n} }

// Size returns the number of active vertices.
func (vs *VertexSubset) Size() int { return vs.size }

// N returns the universe size.
func (vs *VertexSubset) N() int { return vs.n }

// IsEmpty reports whether no vertices are active.
func (vs *VertexSubset) IsEmpty() bool { return vs.size == 0 }

// Contains reports whether v is active.
func (vs *VertexSubset) Contains(v graph.NodeID) bool {
	if vs.dense != nil {
		return vs.dense[v]
	}
	for _, u := range vs.sparse {
		if u == v {
			return true
		}
	}
	return false
}

// ToSparse materializes (and caches) the sparse representation and
// returns it in ascending vertex order.
func (vs *VertexSubset) ToSparse() []graph.NodeID {
	if vs.dense == nil {
		return vs.sparse
	}
	out := make([]graph.NodeID, 0, vs.size)
	for v, in := range vs.dense {
		if in {
			out = append(out, graph.NodeID(v))
		}
	}
	vs.sparse = out
	return out
}

// ToDense materializes (and caches) the dense representation.
func (vs *VertexSubset) ToDense() []bool {
	if vs.dense != nil {
		return vs.dense
	}
	d := make([]bool, vs.n)
	for _, v := range vs.sparse {
		d[v] = true
	}
	vs.dense = d
	return d
}

// VertexMap applies fn to every active vertex in parallel.
func VertexMap(workers int, vs *VertexSubset, fn func(v graph.NodeID)) {
	if vs.dense != nil {
		parallel.For(workers, vs.n, func(v int) {
			if vs.dense[v] {
				fn(graph.NodeID(v))
			}
		})
		return
	}
	parallel.For(workers, len(vs.sparse), func(i int) { fn(vs.sparse[i]) })
}

// VertexFilter returns the sub-frontier of active vertices for which keep
// returns true.
func VertexFilter(workers int, vs *VertexSubset, keep func(v graph.NodeID) bool) *VertexSubset {
	mem := make([]bool, vs.n)
	VertexMap(workers, vs, func(v graph.NodeID) {
		if keep(v) {
			mem[v] = true
		}
	})
	return FromDense(mem)
}
