package repro

// testing.B entry points for every table and figure of the paper's
// evaluation (§IV). These run the same drivers as cmd/geebench but at a
// large scale divisor so `go test -bench=.` completes in minutes; pass
// larger sizes through cmd/geebench for the full-shape reproduction
// recorded in EXPERIMENTS.md.
//
//	BenchmarkTableI      — Table I  (4 implementations × 6 graph stand-ins)
//	BenchmarkFig2        — Figure 2 (largest graph, normalized runtimes)
//	BenchmarkFig3Scaling — Figure 3 (strong scaling of LigraParallel)
//	BenchmarkFig4Sweep   — Figure 4 (ER sweep, runtime vs edges)
//	BenchmarkAblation    — §IV atomics on/off + replicated buffers
//	BenchmarkWInit       — §III O(nk) projection-initialization share

import (
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/gee"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labels"
	"repro/internal/ligra"
)

// benchCfg is the shared small-scale configuration for testing.B runs.
func benchCfg() bench.Config {
	return bench.Config{
		ScaleDiv:      256,
		Reps:          1,
		Workers:       runtime.GOMAXPROCS(0),
		K:             50,
		LabelFraction: 0.1,
		Seed:          12345,
	}
}

// BenchmarkTableI regenerates Table I: every implementation on every
// graph stand-in. Sub-benchmark names follow "graph/implementation".
func BenchmarkTableI(b *testing.B) {
	cfg := benchCfg()
	for _, spec := range bench.TableISpecs {
		w := bench.PrepareWorkload(spec, cfg)
		for _, impl := range []gee.Impl{gee.Reference, gee.Optimized, gee.LigraSerial, gee.LigraParallel} {
			b.Run(spec.Name+"/"+impl.String(), func(b *testing.B) {
				opts := gee.Options{K: w.K, Workers: cfg.Workers}
				b.SetBytes(int64(len(w.EL.Edges)) * 12) // e = (u,v,w) per row
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if impl == gee.Reference || impl == gee.Optimized {
						_, err = gee.Embed(impl, w.EL, w.Y, opts)
					} else {
						_, err = gee.EmbedCSR(impl, w.G, w.Y, opts)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig2 regenerates Figure 2's three bars on the Friendster
// stand-in.
func BenchmarkFig2(b *testing.B) {
	cfg := benchCfg()
	w := bench.PrepareWorkload(bench.LargestSpec(), cfg)
	for _, impl := range []gee.Impl{gee.Optimized, gee.LigraSerial, gee.LigraParallel} {
		b.Run(impl.String(), func(b *testing.B) {
			opts := gee.Options{K: w.K, Workers: cfg.Workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if impl == gee.Optimized {
					_, err = gee.Embed(impl, w.EL, w.Y, opts)
				} else {
					_, err = gee.EmbedCSR(impl, w.G, w.Y, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Scaling regenerates Figure 3: LigraParallel runtime as the
// worker count grows.
func BenchmarkFig3Scaling(b *testing.B) {
	cfg := benchCfg()
	w := bench.PrepareWorkload(bench.LargestSpec(), cfg)
	max := runtime.GOMAXPROCS(0)
	for cores := 1; cores <= max; cores *= 2 {
		b.Run(coresName(cores), func(b *testing.B) {
			opts := gee.Options{K: w.K, Workers: cores}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gee.EmbedCSR(gee.LigraParallel, w.G, w.Y, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if max > 1 && max&(max-1) != 0 {
		b.Run(coresName(max), func(b *testing.B) {
			opts := gee.Options{K: w.K, Workers: max}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gee.EmbedCSR(gee.LigraParallel, w.G, w.Y, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func coresName(c int) string {
	if c < 10 {
		return "cores=0" + string(rune('0'+c))
	}
	return "cores=" + string(rune('0'+c/10)) + string(rune('0'+c%10))
}

// BenchmarkFig4Sweep regenerates Figure 4: runtime vs edges on ER graphs
// (n = m/16, the paper's shape), for each of the four curves.
func BenchmarkFig4Sweep(b *testing.B) {
	cfg := benchCfg()
	for lg := 13; lg <= 19; lg += 2 {
		m := int64(1) << lg
		n := int(m / 16)
		if n < 1024 {
			n = 1024
		}
		el := gen.ErdosRenyi(cfg.Workers, n, m, cfg.Seed+uint64(lg))
		g := graph.BuildCSR(cfg.Workers, el)
		y := labels.SampleSemiSupervised(n, cfg.K, cfg.LabelFraction, cfg.Seed)
		for _, impl := range bench.Fig4Impls {
			b.Run("m=2^"+itoa(lg)+"/"+impl.String(), func(b *testing.B) {
				opts := gee.Options{K: cfg.K, Workers: cfg.Workers}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if impl == gee.Reference || impl == gee.Optimized {
						_, err = gee.Embed(impl, el, y, opts)
					} else {
						_, err = gee.EmbedCSR(impl, g, y, opts)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation regenerates the §IV race-handling ablation: atomics
// on, atomics off, and the replicated-buffer alternative.
func BenchmarkAblation(b *testing.B) {
	cfg := benchCfg()
	w := bench.PrepareWorkload(bench.TableISpecs[3], cfg) // soc-orkut stand-in
	opts := gee.Options{K: w.K, Workers: cfg.Workers}
	b.Run("atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedCSR(gee.LigraParallel, w.G, w.Y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unsafe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedCSR(gee.LigraParallelUnsafe, w.G, w.Y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replicated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gee.EmbedReplicated(w.G, w.Y, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWInit regenerates the §III observation: at fixed edge count,
// the O(nk) projection initialization grows as average degree falls.
func BenchmarkWInit(b *testing.B) {
	cfg := benchCfg()
	const edges = 1 << 18
	for _, deg := range []int{16, 4, 1} {
		n := edges / deg
		el := gen.ErdosRenyi(cfg.Workers, n, edges, cfg.Seed)
		g := graph.BuildCSR(cfg.Workers, el)
		y := labels.SampleSemiSupervised(n, cfg.K, cfg.LabelFraction, cfg.Seed)
		b.Run("avgdeg="+itoa(deg), func(b *testing.B) {
			opts := gee.Options{K: cfg.K, Workers: cfg.Workers}
			b.ResetTimer()
			var winit, emap int64
			for i := 0; i < b.N; i++ {
				_, tm, err := gee.EmbedCSRTimed(gee.LigraParallel, g, y, opts)
				if err != nil {
					b.Fatal(err)
				}
				winit += tm.WInit.Nanoseconds()
				emap += tm.EdgeMap.Nanoseconds()
			}
			b.ReportMetric(float64(winit)/float64(b.N), "winit-ns/op")
			b.ReportMetric(float64(emap)/float64(b.N), "edgemap-ns/op")
		})
	}
}

// Microbenchmarks for the substrate hot paths.

func BenchmarkBuildCSR(b *testing.B) {
	el := gen.RMAT(0, 18, 1<<22, gen.Graph500Params, 1)
	b.SetBytes(int64(len(el.Edges)) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BuildCSR(0, el)
	}
}

func BenchmarkEdgeMapDenseTraversal(b *testing.B) {
	el := gen.RMAT(0, 18, 1<<22, gen.Graph500Params, 2)
	g := graph.BuildCSR(0, el)
	frontier := ligra.All(g.N)
	b.SetBytes(g.NumEdges() * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ligra.Process(g, frontier, func(u, v graph.NodeID, w float32) bool { return false },
			ligra.Options{})
	}
}

func BenchmarkGenerateRMAT(b *testing.B) {
	b.SetBytes((1 << 22) * 12)
	for i := 0; i < b.N; i++ {
		gen.RMAT(0, 18, 1<<22, gen.Graph500Params, uint64(i))
	}
}

func BenchmarkGenerateER(b *testing.B) {
	b.SetBytes((1 << 22) * 12)
	for i := 0; i < b.N; i++ {
		gen.ErdosRenyi(0, 1<<18, 1<<22, uint64(i))
	}
}
