#!/usr/bin/env bash
# End-to-end serving smoke: build geeserve + geeload, start the HTTP
# serving stack on a free port, drive a short closed-loop load — the
# writer/reader mix plus batched reads, approximate (IVF) neighbor
# queries, and a replica follower living off /v1/delta — assert
# non-zero applied ops, that the post-load recall@10 of the approx
# index against the exact scan is ≥ 0.9 at the default nprobe, that
# the replica ends bit-identical to the primary's /v1/snapshot after
# churn, that a second load over the binary wire format also verifies
# bit-identical while spending fewer delta bytes per sync than the
# JSON run, and check a clean graceful shutdown on SIGTERM. The
# observability legs scrape /metrics (grammar-valid Prometheus text,
# request counters reflecting the load, the coalescer queue-depth
# gauge) and check pprof is absent by default but serves under -pprof.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)
log=$(mktemp -d)
go build -o "$bin/geeserve" ./cmd/geeserve
go build -o "$bin/geeload" ./cmd/geeload

# n=5000 sits above the approximate index's exact-fallback threshold,
# so the smoke exercises a real IVF build, not the degenerate path.
# -slow-request 1ms is deliberately hair-trigger: the tracing leg below
# needs slow-request lines in serve.err to join against /debug/traces.
"$bin/geeserve" -serve 127.0.0.1:0 -n 5000 -k 5 -rounds 0 -readers 0 \
  -slow-request 1ms \
  >"$log/serve.out" 2>"$log/serve.err" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# The server prints its bound address once listening (":0" = free port).
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^# serving HTTP on //p' "$log/serve.err" | head -1)
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "FAIL: server never reported its address" >&2
  cat "$log/serve.err" >&2
  exit 1
fi
echo "server up on $addr"

# Gate the load on readiness, not liveness: /readyz answers 200 only
# once the coalescer accepts writes and an epoch has published, so
# there is no need to sleep-and-hope before driving traffic.
ready=""
for _ in $(seq 1 100); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/readyz")
  if [ "$code" = "200" ]; then ready=yes; break; fi
  sleep 0.1
done
if [ -z "$ready" ]; then
  echo "FAIL: /readyz never answered 200" >&2
  curl -s "http://$addr/readyz" >&2 || true
  exit 1
fi
curl -fsS "http://$addr/healthz"
echo

# -edge-block keeps most writer edges inside a planted block so the
# embedding clusters — the structure the IVF recall measurement needs.
"$bin/geeload" -addr "http://$addr" -duration 2s -writers 3 -readers 3 -batch 32 \
  -edge-block 0.9 -batch-readers 1 -read-batch 16 \
  -neighbor-readers 1 -neighbor-k 10 -neighbor-mode approx -recall-queries 50 \
  -replicas 1 -replica-sync 20ms -replica-verify \
  -metrics-url "http://$addr/metrics" \
  -traces-url "http://$addr/debug/traces" \
  | tee "$log/load.out"

if ! grep -Eq 'ingested [1-9][0-9]* ops' "$log/load.out"; then
  echo "FAIL: geeload acknowledged no ops" >&2
  exit 1
fi
if ! grep -Eq 'batched reads: [1-9][0-9]* requests' "$log/load.out"; then
  echo "FAIL: no batched reads completed" >&2
  exit 1
fi
if ! grep -Eq 'neighbor queries: [1-9][0-9]* top-10 by l2 \(approx\)' "$log/load.out"; then
  echo "FAIL: no approx neighbor queries completed" >&2
  exit 1
fi
# The approximate index must actually have been exercised (not the
# small-n served-exact degenerate path) and must hit recall@10 >= 0.9
# against the exact scan at the default nprobe.
recall=$(sed -n 's/^approx neighbor recall@10: \([0-9.]*\) over .*/\1/p' "$log/load.out" | head -1)
if [ -z "$recall" ]; then
  echo "FAIL: no recall@10 figure reported (served-exact fallback or missing measurement)" >&2
  exit 1
fi
if ! awk -v r="$recall" 'BEGIN { exit !(r >= 0.9) }'; then
  echo "FAIL: approx recall@10 = $recall < 0.9" >&2
  exit 1
fi
echo "recall@10 = $recall"
if ! grep -Eq 'replica 0: epoch [1-9][0-9]*, [1-9][0-9]* syncs' "$log/load.out"; then
  echo "FAIL: the replica never synced" >&2
  exit 1
fi
# The teeth: after churn, the delta-fed replica must match the
# primary's snapshot float for float (geeload exits non-zero otherwise).
if ! grep -q 'replica verify OK' "$log/load.out"; then
  echo "FAIL: replica not bit-identical to the primary snapshot" >&2
  exit 1
fi
if ! curl -fsS "http://$addr/statsz" | grep -Eq '"Inserts":[1-9][0-9]*'; then
  echo "FAIL: server reports zero applied inserts" >&2
  exit 1
fi
# geeload's own end-of-run scrape must have reported server-side
# latencies (it exits non-zero on a scrape/parse failure).
if ! grep -q 'server metrics' "$log/load.out"; then
  echo "FAIL: geeload -metrics-url reported no server metrics" >&2
  exit 1
fi

# Observability leg: /metrics serves a non-empty exposition in which
# every line is either a HELP/TYPE comment or a sample matching the
# Prometheus text grammar, the request counters reflect the load just
# driven, and the coalescer queue-depth gauge is present.
curl -fsS "http://$addr/metrics" >"$log/metrics.out"
if ! [ -s "$log/metrics.out" ]; then
  echo "FAIL: /metrics served an empty body" >&2
  exit 1
fi
# The label block is matched greedily (.*\}): label *values* may
# contain braces (route="GET /v1/embedding/{v}").
grammar='^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|-Inf|NaN))$'
if grep -Evq "$grammar" "$log/metrics.out"; then
  echo "FAIL: /metrics lines fail the text-format grammar:" >&2
  grep -Ev "$grammar" "$log/metrics.out" | head >&2
  exit 1
fi
if ! grep -Eq 'gee_http_requests_total\{code="200",route="POST /v1/edges"\} [1-9]' "$log/metrics.out"; then
  echo "FAIL: /metrics shows no acked POST /v1/edges requests after the load" >&2
  exit 1
fi
if ! grep -Eq '^gee_coalescer_queue_depth ' "$log/metrics.out"; then
  echo "FAIL: /metrics is missing the coalescer queue-depth gauge" >&2
  exit 1
fi
if ! grep -Eq '^gee_dyn_publish_seconds_count [1-9]' "$log/metrics.out"; then
  echo "FAIL: /metrics shows no publishes after the load" >&2
  exit 1
fi
echo "metrics exposition OK ($(wc -l <"$log/metrics.out") lines)"

# Tracing leg: the flight recorder must have retained a write trace
# decomposed into the four pipeline stages, geeload's -traces-url
# report must have printed the slowest write's breakdown, the
# per-stage histograms must have counted the acked writes, and a
# retained trace id must join against a slow-request line in the
# server log (the 1ms threshold above guarantees lines exist).
curl -fsS -G --data-urlencode 'name=POST /v1/edges' \
  "http://$addr/debug/traces" >"$log/traces.out"
for stage in queue fold publish ack; do
  if ! grep -q "\"name\":\"$stage\"" "$log/traces.out"; then
    echo "FAIL: /debug/traces write traces missing stage \"$stage\"" >&2
    head -c 2000 "$log/traces.out" >&2
    exit 1
  fi
done
if ! grep -q 'slowest write trace' "$log/load.out"; then
  echo "FAIL: geeload -traces-url reported no slowest-write breakdown" >&2
  exit 1
fi
if ! grep -Eq 'gee_write_stage_seconds_count\{stage="fold"\} [1-9]' "$log/metrics.out"; then
  echo "FAIL: /metrics shows no per-stage write observations" >&2
  exit 1
fi
# Join: every retained trace id is a 16-hex-digit token; at least one
# must appear as trace=<id> on a slow-request line.
joined=""
for tid in $(grep -o '"id":"[0-9a-f]\{16\}"' "$log/traces.out" | cut -d'"' -f4 | sort -u); do
  if grep -q "trace=$tid" "$log/serve.err"; then joined="$tid"; break; fi
done
if [ -z "$joined" ]; then
  echo "FAIL: no retained trace id joins a slow-request log line" >&2
  grep -m 3 'slow-request' "$log/serve.err" >&2 || echo "  (no slow-request lines at all)" >&2
  exit 1
fi
echo "tracing OK (trace $joined joins the slow-request log)"

# pprof must be absent unless opted in.
pprof_code=$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/debug/pprof/")
if [ "$pprof_code" != "404" ]; then
  echo "FAIL: /debug/pprof/ answered $pprof_code on a server without -pprof (want 404)" >&2
  exit 1
fi

# Second leg: the same replica loop over the binary wire format. The
# follower must still end bit-identical to the primary (the float32
# wire loses nothing the verification snapshot doesn't also lose) and
# the sparse delta frames must spend under half the wire bytes per
# applied row that the JSON text did above. Per-row, not per-sync:
# binary streaming frees enough server CPU that this leg acks several
# times more writes, so its syncs carry far more rows each — bytes
# per row is the load-independent figure (~6× at n=100k, see
# EXPERIMENTS.md; ≥2× is the floor asserted here).
"$bin/geeload" -addr "http://$addr" -duration 2s -writers 3 -readers 0 \
  -batch 32 -edge-block 0.9 -replicas 1 -replica-sync 20ms -replica-verify \
  -wire binary \
  | tee "$log/load_bin.out"

if ! grep -q 'replica verify OK' "$log/load_bin.out"; then
  echo "FAIL: binary-wire replica not bit-identical to the primary snapshot" >&2
  exit 1
fi
json_rows=$(sed -n 's/.* \([0-9][0-9]*\) delta rows applied.*/\1/p' "$log/load.out" | head -1)
json_wire=$(sed -n 's/.*delta wire \([0-9][0-9]*\) B.*/\1/p' "$log/load.out" | head -1)
bin_rows=$(sed -n 's/.* \([0-9][0-9]*\) delta rows applied.*/\1/p' "$log/load_bin.out" | head -1)
bin_wire=$(sed -n 's/.*delta wire \([0-9][0-9]*\) B.*/\1/p' "$log/load_bin.out" | head -1)
if [ -z "$json_rows" ] || [ -z "$json_wire" ] || [ -z "$bin_rows" ] || [ -z "$bin_wire" ]; then
  echo "FAIL: missing delta wire/rows figures (json $json_wire/$json_rows, binary $bin_wire/$bin_rows)" >&2
  exit 1
fi
if ! awk -v jw="$json_wire" -v jr="$json_rows" -v bw="$bin_wire" -v br="$bin_rows" \
    'BEGIN { exit !(jr > 0 && br > 0 && 2 * bw / br < jw / jr) }'; then
  echo "FAIL: binary delta wire not under half the JSON bytes per row:" >&2
  echo "  json $json_wire B / $json_rows rows, binary $bin_wire B / $bin_rows rows" >&2
  exit 1
fi
echo "delta wire per applied row: json $json_wire B/$json_rows rows, binary $bin_wire B/$bin_rows rows"
# /statsz must show the per-format split actually counting binary
# responses after the second leg.
if ! curl -fsS "http://$addr/statsz" | grep -Eq '"binary_responses":[1-9]'; then
  echo "FAIL: /statsz shows no binary responses after the binary-wire run" >&2
  exit 1
fi

kill -TERM "$pid"
status=0
wait "$pid" || status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: server exited with status $status" >&2
  cat "$log/serve.err" >&2
  exit 1
fi
if ! grep -q 'graceful shutdown complete' "$log/serve.out"; then
  echo "FAIL: no graceful-shutdown marker" >&2
  cat "$log/serve.out" >&2
  exit 1
fi

# Opt-in pprof leg: a fresh server started with -pprof must serve the
# profile index on the same mux.
"$bin/geeserve" -serve 127.0.0.1:0 -n 100 -k 2 -rounds 0 -readers 0 -pprof \
  >"$log/pprof_serve.out" 2>"$log/pprof_serve.err" &
ppid=$!
trap 'kill "$pid" "$ppid" 2>/dev/null || true' EXIT
paddr=""
for _ in $(seq 1 100); do
  paddr=$(sed -n 's/^# serving HTTP on //p' "$log/pprof_serve.err" | head -1)
  [ -n "$paddr" ] && break
  sleep 0.1
done
if [ -z "$paddr" ]; then
  echo "FAIL: -pprof server never reported its address" >&2
  cat "$log/pprof_serve.err" >&2
  exit 1
fi
if ! curl -fsS "http://$paddr/debug/pprof/" | grep -q goroutine; then
  echo "FAIL: /debug/pprof/ not serving with -pprof set" >&2
  exit 1
fi
kill -TERM "$ppid"
wait "$ppid" || { echo "FAIL: -pprof server exited non-zero" >&2; exit 1; }
echo "pprof gating OK (404 by default, serves with -pprof)"

# Sharded leg: the same serving surface behind -shards 4. The load is
# the usual writer/reader/replica mix; the replica follower must detect
# the partition via /v1/partition, assemble per-shard sections, and end
# bit-identical to every shard's section (geeload prints the sharded
# verify marker with the epoch vector it converged on). The metrics
# registry must carry the shard label dimension and /statsz the
# per-shard epoch vector.
"$bin/geeserve" -serve 127.0.0.1:0 -n 5000 -k 5 -shards 4 -rounds 0 -readers 0 \
  >"$log/shard_serve.out" 2>"$log/shard_serve.err" &
spid=$!
trap 'kill "$pid" "$ppid" "$spid" 2>/dev/null || true' EXIT
saddr=""
for _ in $(seq 1 100); do
  saddr=$(sed -n 's/^# serving HTTP on //p' "$log/shard_serve.err" | head -1)
  [ -n "$saddr" ] && break
  sleep 0.1
done
if [ -z "$saddr" ]; then
  echo "FAIL: sharded server never reported its address" >&2
  cat "$log/shard_serve.err" >&2
  exit 1
fi
if ! grep -q '^# sharded serving: 4 shards' "$log/shard_serve.err"; then
  echo "FAIL: geeserve -shards 4 did not report sharded serving" >&2
  cat "$log/shard_serve.err" >&2
  exit 1
fi
for _ in $(seq 1 100); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://$saddr/readyz")
  [ "$code" = "200" ] && break
  sleep 0.1
done
if ! curl -fsS "http://$saddr/v1/partition" | grep -q '"shards":4'; then
  echo "FAIL: /v1/partition does not report 4 shards" >&2
  exit 1
fi
"$bin/geeload" -addr "http://$saddr" -duration 2s -writers 3 -readers 3 -batch 32 \
  -edge-block 0.9 -batch-readers 1 -read-batch 16 \
  -neighbor-readers 1 -neighbor-k 10 -neighbor-mode approx \
  -replicas 1 -replica-sync 20ms -replica-verify \
  | tee "$log/shard_load.out"
if ! grep -Eq 'ingested [1-9][0-9]* ops' "$log/shard_load.out"; then
  echo "FAIL: sharded leg acknowledged no ops" >&2
  exit 1
fi
# Each 1250-row shard sits above the IVF exact threshold, so the
# recall figure measures four real per-shard indexes merged by the
# scatter-gather, against the scattered exact scan.
srecall=$(sed -n 's/^approx neighbor recall@10: \([0-9.]*\) over .*/\1/p' "$log/shard_load.out" | head -1)
if [ -z "$srecall" ]; then
  echo "FAIL: sharded leg reported no recall@10 figure" >&2
  exit 1
fi
if ! awk -v r="$srecall" 'BEGIN { exit !(r >= 0.9) }'; then
  echo "FAIL: sharded approx recall@10 = $srecall < 0.9" >&2
  exit 1
fi
echo "sharded recall@10 = $srecall"
# The teeth: the section-assembled replica must end bit-identical to
# all four shard sections at a converged epoch vector.
if ! grep -q 'replica verify OK' "$log/shard_load.out"; then
  echo "FAIL: sharded replica not bit-identical to the shard sections" >&2
  exit 1
fi
if ! grep -q 'shard sections at epoch vector' "$log/shard_load.out"; then
  echo "FAIL: replica verify did not take the sharded per-section path" >&2
  exit 1
fi
curl -fsS "http://$saddr/metrics" >"$log/shard_metrics.out"
for i in 0 1 2 3; do
  if ! grep -Eq "^gee_coalescer_queue_depth\{shard=\"$i\"\} " "$log/shard_metrics.out"; then
    echo "FAIL: /metrics missing gee_coalescer_queue_depth{shard=\"$i\"}" >&2
    exit 1
  fi
done
if ! grep -Eq '^gee_router_shards 4$' "$log/shard_metrics.out"; then
  echo "FAIL: /metrics missing gee_router_shards 4" >&2
  exit 1
fi
if ! curl -fsS "http://$saddr/statsz" | grep -Eq '"epochs":\{"0":[0-9]+'; then
  echo "FAIL: /statsz missing the per-shard epoch vector" >&2
  exit 1
fi
kill -TERM "$spid"
sstatus=0
wait "$spid" || sstatus=$?
if [ "$sstatus" -ne 0 ]; then
  echo "FAIL: sharded server exited with status $sstatus" >&2
  cat "$log/shard_serve.err" >&2
  exit 1
fi
if ! grep -q 'graceful shutdown complete' "$log/shard_serve.out"; then
  echo "FAIL: sharded server missing the graceful-shutdown marker" >&2
  cat "$log/shard_serve.out" >&2
  exit 1
fi
echo "sharded serving OK (4 shards, replica bit-identical, shard-labeled metrics)"
echo "e2e smoke OK"
